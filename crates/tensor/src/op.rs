//! Differentiable operator definitions and their backward rules.

use std::sync::Arc;

use crate::kernels::BackendKind;
use crate::pool::BufferPool;
use crate::sparse::CsrMatrix;
use crate::tape::Var;
use crate::tensor::Tensor;

/// The operator that produced a tape node.
///
/// Each variant stores the [`Var`] handles of its inputs plus any
/// non-differentiable configuration (masks, indices, constants). The set is
/// intentionally exactly the vocabulary required by WIDEN (Eq. 1–10) and the
/// eight baselines — nothing speculative.
#[derive(Clone)]
pub enum Op {
    /// Input value (constant or parameter); gradients accumulate but nothing
    /// propagates further.
    Leaf,
    /// `A · B`.
    MatMul(Var, Var),
    /// `A · Bᵀ` (attention scores `Q·Kᵀ` without materialising a transpose).
    MatMulNt(Var, Var),
    /// Element-wise sum of two same-shape tensors.
    Add(Var, Var),
    /// Element-wise difference.
    Sub(Var, Var),
    /// Element-wise product — the paper's `⊙` message-packaging operator.
    Mul(Var, Var),
    /// `A + 1·b`: adds a `1 × c` row vector to every row of `A` (bias of Eq. 7).
    AddRowBroadcast(Var, Var),
    /// Scalar multiple (`1/√d` attention scaling, `1/Φ` averaging).
    Scale(Var, f32),
    /// Rectified linear unit.
    Relu(Var),
    /// Leaky ReLU with the given negative slope (GAT baseline).
    LeakyRelu(Var, f32),
    /// Hyperbolic tangent.
    Tanh(Var),
    /// Row-wise softmax.
    SoftmaxRows(Var),
    /// Row-wise softmax of `A + Θ` where `Θ` is a constant additive mask
    /// (Eq. 4/6 — the successive-attention causal mask).
    MaskedSoftmaxRows(Var, Arc<Tensor>),
    /// Vertical stack of the operands (builds message-pack matrices).
    VStack(Vec<Var>),
    /// Horizontal concatenation (Eq. 7's `[h∘ ; h▷]`).
    HStack(Vec<Var>),
    /// Gathers the listed rows; gradient scatter-adds back.
    SelectRows(Var, Arc<[usize]>),
    /// Sum of all elements, producing `1 × 1`.
    Sum(Var),
    /// Column-wise mean over rows, producing `1 × c` (Φ-averaging of Eq. 7).
    MeanRows(Var),
    /// Row-wise L2 normalisation (Eq. 7's `h/‖h‖`).
    L2NormalizeRows(Var),
    /// Mean softmax cross-entropy against integer class labels (Eq. 10).
    SoftmaxCrossEntropy(Var, Arc<[usize]>),
    /// Element-wise maximum of two tensors (Eq. 8's relay-edge `maxpool`).
    MaxPool2(Var, Var),
    /// `S · B` for a constant sparse CSR matrix `S` (GCN-family baselines).
    Spmm(Arc<CsrMatrix>, Var),
    /// Transposed copy (GTN/HAN semantic-attention plumbing).
    Transpose(Var),
    /// `A · s` where `s` is a `1 × 1` variable — scalar gating with gradient
    /// to the scalar (GTN's soft edge-type selection, HAN's semantic
    /// attention weights).
    MulScalarVar(Var, Var),
    /// Ragged attention scores `(Q, K, spans)`: row `i` of the padded
    /// output holds `⟨q_i, k_{start_i + j}⟩` for `j < len_i` (batched
    /// Eq. 3/4/5 score kernel). Padding columns carry no gradient.
    PaddedSegmentScores(Var, Var, Arc<[(usize, usize)]>),
    /// Row-wise softmax over the first `lens[r]` columns; padding columns
    /// are exactly zero (segment/ragged masked softmax of the batched
    /// attention path).
    PaddedSoftmaxRows(Var, Arc<[usize]>),
    /// `(W, V, spans)`: per-row weighted sum `Σ_j w_{ij} · v_{start_i + j}`
    /// of value segments (batched `attn · V`).
    SegmentWeightedSum(Var, Var, Arc<[(usize, usize)]>),
    /// Per-span mean of input rows (batched Φ-averaging of Eq. 7);
    /// zero-length spans produce zero rows.
    SegmentMeanRows(Var, Arc<[(usize, usize)]>),
}

/// Number of [`Op`] kinds — the size of per-kind aggregation tables.
pub const OP_KIND_COUNT: usize = 28;

impl Op {
    /// Stable display name of this op kind (profiler tables, traces).
    pub fn name(&self) -> &'static str {
        match self {
            Op::Leaf => "leaf",
            Op::MatMul(..) => "matmul",
            Op::MatMulNt(..) => "matmul_nt",
            Op::Add(..) => "add",
            Op::Sub(..) => "sub",
            Op::Mul(..) => "mul",
            Op::AddRowBroadcast(..) => "add_row_broadcast",
            Op::Scale(..) => "scale",
            Op::Relu(..) => "relu",
            Op::LeakyRelu(..) => "leaky_relu",
            Op::Tanh(..) => "tanh",
            Op::SoftmaxRows(..) => "softmax_rows",
            Op::MaskedSoftmaxRows(..) => "masked_softmax_rows",
            Op::VStack(..) => "vstack",
            Op::HStack(..) => "hstack",
            Op::SelectRows(..) => "select_rows",
            Op::Sum(..) => "sum",
            Op::MeanRows(..) => "mean_rows",
            Op::L2NormalizeRows(..) => "l2_normalize_rows",
            Op::SoftmaxCrossEntropy(..) => "softmax_cross_entropy",
            Op::MaxPool2(..) => "maxpool2",
            Op::Spmm(..) => "spmm",
            Op::Transpose(..) => "transpose",
            Op::MulScalarVar(..) => "mul_scalar_var",
            Op::PaddedSegmentScores(..) => "padded_segment_scores",
            Op::PaddedSoftmaxRows(..) => "padded_softmax_rows",
            Op::SegmentWeightedSum(..) => "segment_weighted_sum",
            Op::SegmentMeanRows(..) => "segment_mean_rows",
        }
    }

    /// Dense index of this op kind in `0..OP_KIND_COUNT` (profiler
    /// aggregation tables).
    pub fn kind_index(&self) -> usize {
        match self {
            Op::Leaf => 0,
            Op::MatMul(..) => 1,
            Op::MatMulNt(..) => 2,
            Op::Add(..) => 3,
            Op::Sub(..) => 4,
            Op::Mul(..) => 5,
            Op::AddRowBroadcast(..) => 6,
            Op::Scale(..) => 7,
            Op::Relu(..) => 8,
            Op::LeakyRelu(..) => 9,
            Op::Tanh(..) => 10,
            Op::SoftmaxRows(..) => 11,
            Op::MaskedSoftmaxRows(..) => 12,
            Op::VStack(..) => 13,
            Op::HStack(..) => 14,
            Op::SelectRows(..) => 15,
            Op::Sum(..) => 16,
            Op::MeanRows(..) => 17,
            Op::L2NormalizeRows(..) => 18,
            Op::SoftmaxCrossEntropy(..) => 19,
            Op::MaxPool2(..) => 20,
            Op::Spmm(..) => 21,
            Op::Transpose(..) => 22,
            Op::MulScalarVar(..) => 23,
            Op::PaddedSegmentScores(..) => 24,
            Op::PaddedSoftmaxRows(..) => 25,
            Op::SegmentWeightedSum(..) => 26,
            Op::SegmentMeanRows(..) => 27,
        }
    }

    /// Input variables of this op (configuration tensors excluded).
    pub fn inputs(&self) -> Vec<Var> {
        match self {
            Op::Leaf => vec![],
            Op::MatMul(a, b)
            | Op::MatMulNt(a, b)
            | Op::Add(a, b)
            | Op::Sub(a, b)
            | Op::Mul(a, b)
            | Op::AddRowBroadcast(a, b)
            | Op::MaxPool2(a, b) => vec![*a, *b],
            Op::Scale(a, _)
            | Op::Relu(a)
            | Op::LeakyRelu(a, _)
            | Op::Tanh(a)
            | Op::SoftmaxRows(a)
            | Op::MaskedSoftmaxRows(a, _)
            | Op::SelectRows(a, _)
            | Op::Sum(a)
            | Op::MeanRows(a)
            | Op::L2NormalizeRows(a)
            | Op::SoftmaxCrossEntropy(a, _)
            | Op::Spmm(_, a)
            | Op::Transpose(a)
            | Op::PaddedSoftmaxRows(a, _)
            | Op::SegmentMeanRows(a, _) => vec![*a],
            Op::MulScalarVar(a, s) => vec![*a, *s],
            Op::PaddedSegmentScores(a, b, _) | Op::SegmentWeightedSum(a, b, _) => vec![*a, *b],
            Op::VStack(parts) | Op::HStack(parts) => parts.clone(),
        }
    }
}

/// Returns a mutable reference to `var`'s gradient slot, seeding it with a
/// zeroed pool buffer on first touch.
///
/// Every backward rule accumulates (`+=`) straight into this slot instead
/// of allocating a per-op delta tensor and adding it in a second sweep.
/// When an op's two inputs alias the same [`Var`] the rules below touch
/// the slot in two sequential borrows, so both contributions accumulate
/// exactly as the old two-`accumulate` path did.
fn grad_slot<'a>(
    grads: &'a mut [Option<Tensor>],
    pool: &mut BufferPool,
    var: Var,
    rows: usize,
    cols: usize,
) -> &'a mut Tensor {
    let slot = &mut grads[var.index()];
    if slot.is_none() {
        *slot = Some(pool.take_zeroed(rows, cols));
    }
    let g = slot.as_mut().expect("grad slot just seeded");
    debug_assert_eq!(g.shape(), (rows, cols), "grad slot shape mismatch");
    g
}

/// Propagates `grad_out` (gradient w.r.t. this node's output) to the inputs.
///
/// `values[i]` is the forward value of tape node `i`; `out_value` is this
/// node's own forward value (several rules reuse it — softmax, tanh, L2).
/// Gradient buffers and scratch tensors are drawn from `pool`; dense GEMM
/// rules dispatch through the tape's selected kernel `backend`.
pub(crate) fn backward_step(
    op: &Op,
    out_value: &Tensor,
    grad_out: &Tensor,
    values: &[Tensor],
    grads: &mut [Option<Tensor>],
    pool: &mut BufferPool,
    backend: BackendKind,
) {
    match op {
        Op::Leaf => {}
        Op::MatMul(a, b) => {
            let (ra, ca) = values[a.index()].shape();
            let (rb, cb) = values[b.index()].shape();
            let ga = grad_slot(grads, pool, *a, ra, ca);
            grad_out.matmul_nt_acc_with(&values[b.index()], ga, backend);
            let gb = grad_slot(grads, pool, *b, rb, cb);
            values[a.index()].matmul_tn_acc_with(grad_out, gb, backend);
        }
        Op::MatMulNt(a, b) => {
            // C = A·Bᵀ ⇒ dA = G·B, dB = Gᵀ·A.
            let (ra, ca) = values[a.index()].shape();
            let (rb, cb) = values[b.index()].shape();
            let ga = grad_slot(grads, pool, *a, ra, ca);
            grad_out.matmul_acc_with(&values[b.index()], ga, backend);
            let gb = grad_slot(grads, pool, *b, rb, cb);
            grad_out.matmul_tn_acc_with(&values[a.index()], gb, backend);
        }
        Op::Add(a, b) => {
            let (r, c) = grad_out.shape();
            grad_slot(grads, pool, *a, r, c).add_scaled(1.0, grad_out);
            grad_slot(grads, pool, *b, r, c).add_scaled(1.0, grad_out);
        }
        Op::Sub(a, b) => {
            let (r, c) = grad_out.shape();
            grad_slot(grads, pool, *a, r, c).add_scaled(1.0, grad_out);
            grad_slot(grads, pool, *b, r, c).add_scaled(-1.0, grad_out);
        }
        Op::Mul(a, b) => {
            let (r, c) = grad_out.shape();
            let ga = grad_slot(grads, pool, *a, r, c);
            for ((o, &g), &v) in ga
                .as_mut_slice()
                .iter_mut()
                .zip(grad_out.as_slice())
                .zip(values[b.index()].as_slice())
            {
                *o += g * v;
            }
            let gb = grad_slot(grads, pool, *b, r, c);
            for ((o, &g), &v) in gb
                .as_mut_slice()
                .iter_mut()
                .zip(grad_out.as_slice())
                .zip(values[a.index()].as_slice())
            {
                *o += g * v;
            }
        }
        Op::AddRowBroadcast(a, b) => {
            let (r, c) = grad_out.shape();
            grad_slot(grads, pool, *a, r, c).add_scaled(1.0, grad_out);
            let gb = grad_slot(grads, pool, *b, 1, c);
            for row in 0..r {
                let g = grad_out.row(row);
                let dst = gb.row_mut(0);
                for i in 0..c {
                    dst[i] += g[i];
                }
            }
        }
        Op::Scale(a, alpha) => {
            let (r, c) = grad_out.shape();
            grad_slot(grads, pool, *a, r, c).add_scaled(*alpha, grad_out);
        }
        Op::Relu(a) => {
            let (r, c) = grad_out.shape();
            let ga = grad_slot(grads, pool, *a, r, c);
            for ((o, &g), &y) in ga
                .as_mut_slice()
                .iter_mut()
                .zip(grad_out.as_slice())
                .zip(out_value.as_slice())
            {
                if y > 0.0 {
                    *o += g;
                }
            }
        }
        Op::LeakyRelu(a, slope) => {
            let (r, c) = grad_out.shape();
            let ga = grad_slot(grads, pool, *a, r, c);
            for ((o, &g), &x) in ga
                .as_mut_slice()
                .iter_mut()
                .zip(grad_out.as_slice())
                .zip(values[a.index()].as_slice())
            {
                *o += if x > 0.0 { g } else { g * slope };
            }
        }
        Op::Tanh(a) => {
            let (r, c) = grad_out.shape();
            let ga = grad_slot(grads, pool, *a, r, c);
            for ((o, &g), &y) in ga
                .as_mut_slice()
                .iter_mut()
                .zip(grad_out.as_slice())
                .zip(out_value.as_slice())
            {
                *o += g * (1.0 - y * y);
            }
        }
        Op::SoftmaxRows(a) | Op::MaskedSoftmaxRows(a, _) => {
            // dx = s ⊙ (g − ⟨g, s⟩) per row; additive masks are constant.
            let (rows, cols) = grad_out.shape();
            let ga = grad_slot(grads, pool, *a, rows, cols);
            for r in 0..rows {
                let s = out_value.row(r);
                let g = grad_out.row(r);
                let inner: f32 = s.iter().zip(g).map(|(&si, &gi)| si * gi).sum();
                let dr = ga.row_mut(r);
                for i in 0..s.len() {
                    dr[i] += s[i] * (g[i] - inner);
                }
            }
        }
        Op::VStack(parts) => {
            let mut row = 0;
            for p in parts {
                let (part_rows, cols) = values[p.index()].shape();
                let gp = grad_slot(grads, pool, *p, part_rows, cols);
                for r in 0..part_rows {
                    let src = grad_out.row(row + r);
                    let dst = gp.row_mut(r);
                    for c in 0..cols {
                        dst[c] += src[c];
                    }
                }
                row += part_rows;
            }
        }
        Op::HStack(parts) => {
            let rows = grad_out.rows();
            let mut col = 0;
            for p in parts {
                let part_cols = values[p.index()].cols();
                let gp = grad_slot(grads, pool, *p, rows, part_cols);
                for r in 0..rows {
                    let src = &grad_out.row(r)[col..col + part_cols];
                    let dst = gp.row_mut(r);
                    for c in 0..part_cols {
                        dst[c] += src[c];
                    }
                }
                col += part_cols;
            }
        }
        Op::SelectRows(a, indices) => {
            let (rows, cols) = values[a.index()].shape();
            let ga = grad_slot(grads, pool, *a, rows, cols);
            for (i, &idx) in indices.iter().enumerate() {
                let dr = ga.row_mut(idx);
                let g = grad_out.row(i);
                for c in 0..g.len() {
                    dr[c] += g[c];
                }
            }
        }
        Op::Sum(a) => {
            let g = grad_out.get(0, 0);
            let (rows, cols) = values[a.index()].shape();
            let ga = grad_slot(grads, pool, *a, rows, cols);
            for o in ga.as_mut_slice() {
                *o += g;
            }
        }
        Op::MeanRows(a) => {
            let (rows, cols) = values[a.index()].shape();
            let scale = 1.0 / rows as f32;
            let ga = grad_slot(grads, pool, *a, rows, cols);
            let g = grad_out.row(0);
            for r in 0..rows {
                let dr = ga.row_mut(r);
                for c in 0..cols {
                    dr[c] += g[c] * scale;
                }
            }
        }
        Op::L2NormalizeRows(a) => {
            // y = x/‖x‖ ⇒ dx = (g − ⟨g, y⟩·y)/‖x‖; zero rows get zero grad.
            let input = &values[a.index()];
            let (rows, cols) = input.shape();
            let ga = grad_slot(grads, pool, *a, rows, cols);
            for r in 0..rows {
                let x = input.row(r);
                let norm = x.iter().map(|v| v * v).sum::<f32>().sqrt();
                if norm == 0.0 {
                    continue;
                }
                let y = out_value.row(r);
                let g = grad_out.row(r);
                let inner: f32 = g.iter().zip(y).map(|(&gi, &yi)| gi * yi).sum();
                let dr = ga.row_mut(r);
                for i in 0..x.len() {
                    dr[i] += (g[i] - inner * y[i]) / norm;
                }
            }
        }
        Op::SoftmaxCrossEntropy(a, labels) => {
            let logits = &values[a.index()];
            let (rows, cols) = logits.shape();
            let g = grad_out.get(0, 0) / rows as f32;
            // Recompute probabilities into a pooled scratch buffer.
            let mut probs = pool.take_zeroed(rows, cols);
            probs.as_mut_slice().copy_from_slice(logits.as_slice());
            for r in 0..rows {
                crate::tensor::softmax_inplace(probs.row_mut(r));
            }
            let ga = grad_slot(grads, pool, *a, rows, cols);
            for r in 0..rows {
                let p = probs.row(r);
                let dr = ga.row_mut(r);
                for c in 0..cols {
                    let target = if c == labels[r] { 1.0 } else { 0.0 };
                    dr[c] += (p[c] - target) * g;
                }
            }
            pool.recycle(probs);
        }
        Op::MaxPool2(a, b) => {
            // Two separable passes so both slots can borrow sequentially
            // (covers the a == b aliasing case like the old delta path:
            // ties route the whole gradient to `a`).
            let va = &values[a.index()];
            let vb = &values[b.index()];
            let (rows, cols) = va.shape();
            let ga = grad_slot(grads, pool, *a, rows, cols);
            for ((o, &g), (&x, &y)) in ga
                .as_mut_slice()
                .iter_mut()
                .zip(grad_out.as_slice())
                .zip(va.as_slice().iter().zip(vb.as_slice()))
            {
                if x >= y {
                    *o += g;
                }
            }
            let gb = grad_slot(grads, pool, *b, vb.rows(), vb.cols());
            for ((o, &g), (&x, &y)) in gb
                .as_mut_slice()
                .iter_mut()
                .zip(grad_out.as_slice())
                .zip(va.as_slice().iter().zip(vb.as_slice()))
            {
                if x < y {
                    *o += g;
                }
            }
        }
        Op::Spmm(csr, b) => {
            // C = S·B ⇒ dB = Sᵀ·G.
            let (rb, cb) = values[b.index()].shape();
            let gb = grad_slot(grads, pool, *b, rb, cb);
            csr.spmm_transposed_acc(grad_out, gb);
        }
        Op::Transpose(a) => {
            let (rows, cols) = values[a.index()].shape();
            let ga = grad_slot(grads, pool, *a, rows, cols);
            for r in 0..rows {
                let dr = ga.row_mut(r);
                for (c, o) in dr.iter_mut().enumerate() {
                    *o += grad_out.get(c, r);
                }
            }
        }
        Op::PaddedSegmentScores(q, k, spans) => {
            // out[i][j] = ⟨q_i, k_{start+j}⟩ ⇒
            //   dq_i += Σ_j g[i][j]·k_{start+j},  dk_{start+j} += g[i][j]·q_i.
            // Separable passes: dq reads only K values, dk only Q values.
            let vq = &values[q.index()];
            let vk = &values[k.index()];
            let gq = grad_slot(grads, pool, *q, vq.rows(), vq.cols());
            for (i, &(start, len)) in spans.iter().enumerate() {
                let g = grad_out.row(i);
                for (j, &gij) in g.iter().enumerate().take(len) {
                    if gij == 0.0 {
                        continue;
                    }
                    let k_row = vk.row(start + j);
                    let dq_row = gq.row_mut(i);
                    for c in 0..dq_row.len() {
                        dq_row[c] += gij * k_row[c];
                    }
                }
            }
            let gk = grad_slot(grads, pool, *k, vk.rows(), vk.cols());
            for (i, &(start, len)) in spans.iter().enumerate() {
                let g = grad_out.row(i);
                let q_row = vq.row(i);
                for (j, &gij) in g.iter().enumerate().take(len) {
                    if gij == 0.0 {
                        continue;
                    }
                    let dk_row = gk.row_mut(start + j);
                    for c in 0..dk_row.len() {
                        dk_row[c] += gij * q_row[c];
                    }
                }
            }
        }
        Op::PaddedSoftmaxRows(a, lens) => {
            // Softmax backward restricted to each row's valid prefix;
            // padding columns have zero output and get zero gradient.
            let (rows, cols) = grad_out.shape();
            let ga = grad_slot(grads, pool, *a, rows, cols);
            for (r, &len) in lens.iter().enumerate() {
                let s = &out_value.row(r)[..len];
                let g = &grad_out.row(r)[..len];
                let inner: f32 = s.iter().zip(g).map(|(&si, &gi)| si * gi).sum();
                let dr = &mut ga.row_mut(r)[..len];
                for i in 0..len {
                    dr[i] += s[i] * (g[i] - inner);
                }
            }
        }
        Op::SegmentWeightedSum(w, v, spans) => {
            // out_i = Σ_j w[i][j]·v_{start+j} ⇒
            //   dw[i][j] = ⟨g_i, v_{start+j}⟩,  dv_{start+j} += w[i][j]·g_i.
            // Separable passes: dw reads only V values, dv only W values.
            let vw = &values[w.index()];
            let vv = &values[v.index()];
            let gw = grad_slot(grads, pool, *w, vw.rows(), vw.cols());
            for (i, &(start, len)) in spans.iter().enumerate() {
                let g = grad_out.row(i);
                let dw_row = &mut gw.row_mut(i)[..len];
                for (j, dw) in dw_row.iter_mut().enumerate() {
                    let v_row = vv.row(start + j);
                    let mut acc = 0.0f32;
                    for c in 0..g.len() {
                        acc += g[c] * v_row[c];
                    }
                    *dw += acc;
                }
            }
            let gv = grad_slot(grads, pool, *v, vv.rows(), vv.cols());
            for (i, &(start, len)) in spans.iter().enumerate() {
                let g = grad_out.row(i);
                for j in 0..len {
                    let wij = vw.get(i, j);
                    if wij != 0.0 {
                        let dv_row = gv.row_mut(start + j);
                        for c in 0..g.len() {
                            dv_row[c] += wij * g[c];
                        }
                    }
                }
            }
        }
        Op::SegmentMeanRows(a, spans) => {
            let (rows, cols) = values[a.index()].shape();
            let ga = grad_slot(grads, pool, *a, rows, cols);
            for (i, &(start, len)) in spans.iter().enumerate() {
                if len == 0 {
                    continue;
                }
                let scale = 1.0 / len as f32;
                let g = grad_out.row(i);
                for r in start..start + len {
                    let dr = ga.row_mut(r);
                    for c in 0..g.len() {
                        dr[c] += g[c] * scale;
                    }
                }
            }
        }
        Op::MulScalarVar(a, s) => {
            let scalar = values[s.index()].get(0, 0);
            let (r, c) = grad_out.shape();
            grad_slot(grads, pool, *a, r, c).add_scaled(scalar, grad_out);
            let ds_val: f32 = grad_out
                .as_slice()
                .iter()
                .zip(values[a.index()].as_slice())
                .map(|(&g, &v)| g * v)
                .sum();
            let gs = grad_slot(grads, pool, *s, 1, 1);
            gs.as_mut_slice()[0] += ds_val;
        }
    }
}
