//! Differentiable operator definitions and their backward rules.

use std::sync::Arc;

use crate::sparse::CsrMatrix;
use crate::tape::Var;
use crate::tensor::Tensor;

/// The operator that produced a tape node.
///
/// Each variant stores the [`Var`] handles of its inputs plus any
/// non-differentiable configuration (masks, indices, constants). The set is
/// intentionally exactly the vocabulary required by WIDEN (Eq. 1–10) and the
/// eight baselines — nothing speculative.
#[derive(Clone)]
pub enum Op {
    /// Input value (constant or parameter); gradients accumulate but nothing
    /// propagates further.
    Leaf,
    /// `A · B`.
    MatMul(Var, Var),
    /// `A · Bᵀ` (attention scores `Q·Kᵀ` without materialising a transpose).
    MatMulNt(Var, Var),
    /// Element-wise sum of two same-shape tensors.
    Add(Var, Var),
    /// Element-wise difference.
    Sub(Var, Var),
    /// Element-wise product — the paper's `⊙` message-packaging operator.
    Mul(Var, Var),
    /// `A + 1·b`: adds a `1 × c` row vector to every row of `A` (bias of Eq. 7).
    AddRowBroadcast(Var, Var),
    /// Scalar multiple (`1/√d` attention scaling, `1/Φ` averaging).
    Scale(Var, f32),
    /// Rectified linear unit.
    Relu(Var),
    /// Leaky ReLU with the given negative slope (GAT baseline).
    LeakyRelu(Var, f32),
    /// Hyperbolic tangent.
    Tanh(Var),
    /// Row-wise softmax.
    SoftmaxRows(Var),
    /// Row-wise softmax of `A + Θ` where `Θ` is a constant additive mask
    /// (Eq. 4/6 — the successive-attention causal mask).
    MaskedSoftmaxRows(Var, Arc<Tensor>),
    /// Vertical stack of the operands (builds message-pack matrices).
    VStack(Vec<Var>),
    /// Horizontal concatenation (Eq. 7's `[h∘ ; h▷]`).
    HStack(Vec<Var>),
    /// Gathers the listed rows; gradient scatter-adds back.
    SelectRows(Var, Arc<[usize]>),
    /// Sum of all elements, producing `1 × 1`.
    Sum(Var),
    /// Column-wise mean over rows, producing `1 × c` (Φ-averaging of Eq. 7).
    MeanRows(Var),
    /// Row-wise L2 normalisation (Eq. 7's `h/‖h‖`).
    L2NormalizeRows(Var),
    /// Mean softmax cross-entropy against integer class labels (Eq. 10).
    SoftmaxCrossEntropy(Var, Arc<[usize]>),
    /// Element-wise maximum of two tensors (Eq. 8's relay-edge `maxpool`).
    MaxPool2(Var, Var),
    /// `S · B` for a constant sparse CSR matrix `S` (GCN-family baselines).
    Spmm(Arc<CsrMatrix>, Var),
    /// Transposed copy (GTN/HAN semantic-attention plumbing).
    Transpose(Var),
    /// `A · s` where `s` is a `1 × 1` variable — scalar gating with gradient
    /// to the scalar (GTN's soft edge-type selection, HAN's semantic
    /// attention weights).
    MulScalarVar(Var, Var),
    /// Ragged attention scores `(Q, K, spans)`: row `i` of the padded
    /// output holds `⟨q_i, k_{start_i + j}⟩` for `j < len_i` (batched
    /// Eq. 3/4/5 score kernel). Padding columns carry no gradient.
    PaddedSegmentScores(Var, Var, Arc<[(usize, usize)]>),
    /// Row-wise softmax over the first `lens[r]` columns; padding columns
    /// are exactly zero (segment/ragged masked softmax of the batched
    /// attention path).
    PaddedSoftmaxRows(Var, Arc<[usize]>),
    /// `(W, V, spans)`: per-row weighted sum `Σ_j w_{ij} · v_{start_i + j}`
    /// of value segments (batched `attn · V`).
    SegmentWeightedSum(Var, Var, Arc<[(usize, usize)]>),
    /// Per-span mean of input rows (batched Φ-averaging of Eq. 7);
    /// zero-length spans produce zero rows.
    SegmentMeanRows(Var, Arc<[(usize, usize)]>),
}

/// Number of [`Op`] kinds — the size of per-kind aggregation tables.
pub const OP_KIND_COUNT: usize = 28;

impl Op {
    /// Stable display name of this op kind (profiler tables, traces).
    pub fn name(&self) -> &'static str {
        match self {
            Op::Leaf => "leaf",
            Op::MatMul(..) => "matmul",
            Op::MatMulNt(..) => "matmul_nt",
            Op::Add(..) => "add",
            Op::Sub(..) => "sub",
            Op::Mul(..) => "mul",
            Op::AddRowBroadcast(..) => "add_row_broadcast",
            Op::Scale(..) => "scale",
            Op::Relu(..) => "relu",
            Op::LeakyRelu(..) => "leaky_relu",
            Op::Tanh(..) => "tanh",
            Op::SoftmaxRows(..) => "softmax_rows",
            Op::MaskedSoftmaxRows(..) => "masked_softmax_rows",
            Op::VStack(..) => "vstack",
            Op::HStack(..) => "hstack",
            Op::SelectRows(..) => "select_rows",
            Op::Sum(..) => "sum",
            Op::MeanRows(..) => "mean_rows",
            Op::L2NormalizeRows(..) => "l2_normalize_rows",
            Op::SoftmaxCrossEntropy(..) => "softmax_cross_entropy",
            Op::MaxPool2(..) => "maxpool2",
            Op::Spmm(..) => "spmm",
            Op::Transpose(..) => "transpose",
            Op::MulScalarVar(..) => "mul_scalar_var",
            Op::PaddedSegmentScores(..) => "padded_segment_scores",
            Op::PaddedSoftmaxRows(..) => "padded_softmax_rows",
            Op::SegmentWeightedSum(..) => "segment_weighted_sum",
            Op::SegmentMeanRows(..) => "segment_mean_rows",
        }
    }

    /// Dense index of this op kind in `0..OP_KIND_COUNT` (profiler
    /// aggregation tables).
    pub fn kind_index(&self) -> usize {
        match self {
            Op::Leaf => 0,
            Op::MatMul(..) => 1,
            Op::MatMulNt(..) => 2,
            Op::Add(..) => 3,
            Op::Sub(..) => 4,
            Op::Mul(..) => 5,
            Op::AddRowBroadcast(..) => 6,
            Op::Scale(..) => 7,
            Op::Relu(..) => 8,
            Op::LeakyRelu(..) => 9,
            Op::Tanh(..) => 10,
            Op::SoftmaxRows(..) => 11,
            Op::MaskedSoftmaxRows(..) => 12,
            Op::VStack(..) => 13,
            Op::HStack(..) => 14,
            Op::SelectRows(..) => 15,
            Op::Sum(..) => 16,
            Op::MeanRows(..) => 17,
            Op::L2NormalizeRows(..) => 18,
            Op::SoftmaxCrossEntropy(..) => 19,
            Op::MaxPool2(..) => 20,
            Op::Spmm(..) => 21,
            Op::Transpose(..) => 22,
            Op::MulScalarVar(..) => 23,
            Op::PaddedSegmentScores(..) => 24,
            Op::PaddedSoftmaxRows(..) => 25,
            Op::SegmentWeightedSum(..) => 26,
            Op::SegmentMeanRows(..) => 27,
        }
    }

    /// Input variables of this op (configuration tensors excluded).
    pub fn inputs(&self) -> Vec<Var> {
        match self {
            Op::Leaf => vec![],
            Op::MatMul(a, b)
            | Op::MatMulNt(a, b)
            | Op::Add(a, b)
            | Op::Sub(a, b)
            | Op::Mul(a, b)
            | Op::AddRowBroadcast(a, b)
            | Op::MaxPool2(a, b) => vec![*a, *b],
            Op::Scale(a, _)
            | Op::Relu(a)
            | Op::LeakyRelu(a, _)
            | Op::Tanh(a)
            | Op::SoftmaxRows(a)
            | Op::MaskedSoftmaxRows(a, _)
            | Op::SelectRows(a, _)
            | Op::Sum(a)
            | Op::MeanRows(a)
            | Op::L2NormalizeRows(a)
            | Op::SoftmaxCrossEntropy(a, _)
            | Op::Spmm(_, a)
            | Op::Transpose(a)
            | Op::PaddedSoftmaxRows(a, _)
            | Op::SegmentMeanRows(a, _) => vec![*a],
            Op::MulScalarVar(a, s) => vec![*a, *s],
            Op::PaddedSegmentScores(a, b, _) | Op::SegmentWeightedSum(a, b, _) => vec![*a, *b],
            Op::VStack(parts) | Op::HStack(parts) => parts.clone(),
        }
    }
}

/// Accumulates `delta` into `grads[var]`, allocating on first touch.
pub(crate) fn accumulate(grads: &mut [Option<Tensor>], var: Var, delta: &Tensor) {
    match &mut grads[var.index()] {
        Some(g) => g.add_scaled(1.0, delta),
        slot @ None => *slot = Some(delta.clone()),
    }
}

/// Propagates `grad_out` (gradient w.r.t. this node's output) to the inputs.
///
/// `values[i]` is the forward value of tape node `i`; `out_value` is this
/// node's own forward value (several rules reuse it — softmax, tanh, L2).
pub(crate) fn backward_step(
    op: &Op,
    out_value: &Tensor,
    grad_out: &Tensor,
    values: &[Tensor],
    grads: &mut [Option<Tensor>],
) {
    match op {
        Op::Leaf => {}
        Op::MatMul(a, b) => {
            let da = grad_out.matmul_nt(&values[b.index()]);
            let db = values[a.index()].matmul_tn(grad_out);
            accumulate(grads, *a, &da);
            accumulate(grads, *b, &db);
        }
        Op::MatMulNt(a, b) => {
            // C = A·Bᵀ ⇒ dA = G·B, dB = Gᵀ·A.
            let da = grad_out.matmul(&values[b.index()]);
            let db = grad_out.matmul_tn(&values[a.index()]);
            accumulate(grads, *a, &da);
            accumulate(grads, *b, &db);
        }
        Op::Add(a, b) => {
            accumulate(grads, *a, grad_out);
            accumulate(grads, *b, grad_out);
        }
        Op::Sub(a, b) => {
            accumulate(grads, *a, grad_out);
            let neg = grad_out.map(|x| -x);
            accumulate(grads, *b, &neg);
        }
        Op::Mul(a, b) => {
            let da = grad_out.zip_map(&values[b.index()], |g, v| g * v);
            let db = grad_out.zip_map(&values[a.index()], |g, v| g * v);
            accumulate(grads, *a, &da);
            accumulate(grads, *b, &db);
        }
        Op::AddRowBroadcast(a, b) => {
            accumulate(grads, *a, grad_out);
            let mut db = Tensor::zeros(1, grad_out.cols());
            for r in 0..grad_out.rows() {
                db.add_scaled(1.0, &Tensor::row_vector(grad_out.row(r)));
            }
            accumulate(grads, *b, &db);
        }
        Op::Scale(a, alpha) => {
            let da = grad_out.map(|g| g * alpha);
            accumulate(grads, *a, &da);
        }
        Op::Relu(a) => {
            let da = grad_out.zip_map(out_value, |g, y| if y > 0.0 { g } else { 0.0 });
            accumulate(grads, *a, &da);
        }
        Op::LeakyRelu(a, slope) => {
            let input = &values[a.index()];
            let da = grad_out.zip_map(input, |g, x| if x > 0.0 { g } else { g * slope });
            accumulate(grads, *a, &da);
        }
        Op::Tanh(a) => {
            let da = grad_out.zip_map(out_value, |g, y| g * (1.0 - y * y));
            accumulate(grads, *a, &da);
        }
        Op::SoftmaxRows(a) | Op::MaskedSoftmaxRows(a, _) => {
            // dx = s ⊙ (g − ⟨g, s⟩) per row; additive masks are constant.
            let mut da = Tensor::zeros(grad_out.rows(), grad_out.cols());
            for r in 0..grad_out.rows() {
                let s = out_value.row(r);
                let g = grad_out.row(r);
                let inner: f32 = s.iter().zip(g).map(|(&si, &gi)| si * gi).sum();
                let dr = da.row_mut(r);
                for i in 0..s.len() {
                    dr[i] = s[i] * (g[i] - inner);
                }
            }
            accumulate(grads, *a, &da);
        }
        Op::VStack(parts) => {
            let mut row = 0;
            for p in parts {
                let part_rows = values[p.index()].rows();
                let cols = grad_out.cols();
                let mut dp = Tensor::zeros(part_rows, cols);
                for r in 0..part_rows {
                    dp.set_row(r, grad_out.row(row + r));
                }
                accumulate(grads, *p, &dp);
                row += part_rows;
            }
        }
        Op::HStack(parts) => {
            let rows = grad_out.rows();
            let mut col = 0;
            for p in parts {
                let part_cols = values[p.index()].cols();
                let mut dp = Tensor::zeros(rows, part_cols);
                for r in 0..rows {
                    let src = &grad_out.row(r)[col..col + part_cols];
                    dp.row_mut(r).copy_from_slice(src);
                }
                accumulate(grads, *p, &dp);
                col += part_cols;
            }
        }
        Op::SelectRows(a, indices) => {
            let src = &values[a.index()];
            let mut da = Tensor::zeros(src.rows(), src.cols());
            for (i, &idx) in indices.iter().enumerate() {
                let dr = da.row_mut(idx);
                let g = grad_out.row(i);
                for c in 0..g.len() {
                    dr[c] += g[c];
                }
            }
            accumulate(grads, *a, &da);
        }
        Op::Sum(a) => {
            let g = grad_out.get(0, 0);
            let src = &values[a.index()];
            let da = Tensor::full(src.rows(), src.cols(), g);
            accumulate(grads, *a, &da);
        }
        Op::MeanRows(a) => {
            let src = &values[a.index()];
            let scale = 1.0 / src.rows() as f32;
            let mut da = Tensor::zeros(src.rows(), src.cols());
            for r in 0..src.rows() {
                let dr = da.row_mut(r);
                let g = grad_out.row(0);
                for c in 0..g.len() {
                    dr[c] = g[c] * scale;
                }
            }
            accumulate(grads, *a, &da);
        }
        Op::L2NormalizeRows(a) => {
            // y = x/‖x‖ ⇒ dx = (g − ⟨g, y⟩·y)/‖x‖; zero rows get zero grad.
            let input = &values[a.index()];
            let mut da = Tensor::zeros(input.rows(), input.cols());
            for r in 0..input.rows() {
                let x = input.row(r);
                let norm = x.iter().map(|v| v * v).sum::<f32>().sqrt();
                if norm == 0.0 {
                    continue;
                }
                let y = out_value.row(r);
                let g = grad_out.row(r);
                let inner: f32 = g.iter().zip(y).map(|(&gi, &yi)| gi * yi).sum();
                let dr = da.row_mut(r);
                for i in 0..x.len() {
                    dr[i] = (g[i] - inner * y[i]) / norm;
                }
            }
            accumulate(grads, *a, &da);
        }
        Op::SoftmaxCrossEntropy(a, labels) => {
            let logits = &values[a.index()];
            let g = grad_out.get(0, 0) / logits.rows() as f32;
            let probs = logits.softmax_rows();
            let mut da = Tensor::zeros(logits.rows(), logits.cols());
            for r in 0..logits.rows() {
                let p = probs.row(r);
                let dr = da.row_mut(r);
                for c in 0..p.len() {
                    let target = if c == labels[r] { 1.0 } else { 0.0 };
                    dr[c] = (p[c] - target) * g;
                }
            }
            accumulate(grads, *a, &da);
        }
        Op::MaxPool2(a, b) => {
            let va = &values[a.index()];
            let vb = &values[b.index()];
            let mut da = Tensor::zeros(va.rows(), va.cols());
            let mut db = Tensor::zeros(vb.rows(), vb.cols());
            for i in 0..va.len() {
                let g = grad_out.as_slice()[i];
                if va.as_slice()[i] >= vb.as_slice()[i] {
                    da.as_mut_slice()[i] = g;
                } else {
                    db.as_mut_slice()[i] = g;
                }
            }
            accumulate(grads, *a, &da);
            accumulate(grads, *b, &db);
        }
        Op::Spmm(csr, b) => {
            // C = S·B ⇒ dB = Sᵀ·G.
            let db = csr.spmm_transposed(grad_out);
            accumulate(grads, *b, &db);
        }
        Op::Transpose(a) => {
            let da = grad_out.transpose();
            accumulate(grads, *a, &da);
        }
        Op::PaddedSegmentScores(q, k, spans) => {
            // out[i][j] = ⟨q_i, k_{start+j}⟩ ⇒
            //   dq_i += Σ_j g[i][j]·k_{start+j},  dk_{start+j} += g[i][j]·q_i.
            let vq = &values[q.index()];
            let vk = &values[k.index()];
            let mut dq = Tensor::zeros(vq.rows(), vq.cols());
            let mut dk = Tensor::zeros(vk.rows(), vk.cols());
            for (i, &(start, len)) in spans.iter().enumerate() {
                let g = grad_out.row(i);
                let q_row = vq.row(i);
                for (j, &gij) in g.iter().enumerate().take(len) {
                    if gij == 0.0 {
                        continue;
                    }
                    let k_row = vk.row(start + j);
                    let dq_row = dq.row_mut(i);
                    for c in 0..dq_row.len() {
                        dq_row[c] += gij * k_row[c];
                    }
                    let dk_row = dk.row_mut(start + j);
                    for c in 0..dk_row.len() {
                        dk_row[c] += gij * q_row[c];
                    }
                }
            }
            accumulate(grads, *q, &dq);
            accumulate(grads, *k, &dk);
        }
        Op::PaddedSoftmaxRows(a, lens) => {
            // Softmax backward restricted to each row's valid prefix;
            // padding columns have zero output and get zero gradient.
            let mut da = Tensor::zeros(grad_out.rows(), grad_out.cols());
            for (r, &len) in lens.iter().enumerate() {
                let s = &out_value.row(r)[..len];
                let g = &grad_out.row(r)[..len];
                let inner: f32 = s.iter().zip(g).map(|(&si, &gi)| si * gi).sum();
                let dr = &mut da.row_mut(r)[..len];
                for i in 0..len {
                    dr[i] = s[i] * (g[i] - inner);
                }
            }
            accumulate(grads, *a, &da);
        }
        Op::SegmentWeightedSum(w, v, spans) => {
            // out_i = Σ_j w[i][j]·v_{start+j} ⇒
            //   dw[i][j] = ⟨g_i, v_{start+j}⟩,  dv_{start+j} += w[i][j]·g_i.
            let vw = &values[w.index()];
            let vv = &values[v.index()];
            let mut dw = Tensor::zeros(vw.rows(), vw.cols());
            let mut dv = Tensor::zeros(vv.rows(), vv.cols());
            for (i, &(start, len)) in spans.iter().enumerate() {
                let g = grad_out.row(i);
                for j in 0..len {
                    let v_row = vv.row(start + j);
                    let mut acc = 0.0f32;
                    for c in 0..g.len() {
                        acc += g[c] * v_row[c];
                    }
                    dw.set(i, j, acc);
                    let wij = vw.get(i, j);
                    if wij != 0.0 {
                        let dv_row = dv.row_mut(start + j);
                        for c in 0..g.len() {
                            dv_row[c] += wij * g[c];
                        }
                    }
                }
            }
            accumulate(grads, *w, &dw);
            accumulate(grads, *v, &dv);
        }
        Op::SegmentMeanRows(a, spans) => {
            let src = &values[a.index()];
            let mut da = Tensor::zeros(src.rows(), src.cols());
            for (i, &(start, len)) in spans.iter().enumerate() {
                if len == 0 {
                    continue;
                }
                let scale = 1.0 / len as f32;
                let g = grad_out.row(i);
                for r in start..start + len {
                    let dr = da.row_mut(r);
                    for c in 0..g.len() {
                        dr[c] += g[c] * scale;
                    }
                }
            }
            accumulate(grads, *a, &da);
        }
        Op::MulScalarVar(a, s) => {
            let scalar = values[s.index()].get(0, 0);
            let da = grad_out.map(|g| g * scalar);
            let ds_val: f32 = grad_out
                .as_slice()
                .iter()
                .zip(values[a.index()].as_slice())
                .map(|(&g, &v)| g * v)
                .sum();
            accumulate(grads, *a, &da);
            accumulate(grads, *s, &Tensor::from_vec(1, 1, vec![ds_val]));
        }
    }
}
