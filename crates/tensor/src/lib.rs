//! # widen-tensor
//!
//! A small, dependency-light numerical substrate purpose-built for the WIDEN
//! reproduction: dense row-major 2-D tensors, a reverse-mode autograd tape
//! covering exactly the operator vocabulary the paper needs (mat-mul, masked
//! softmax attention, element-wise ⊙ message packaging, ReLU feed-forward,
//! row L2 normalisation, softmax cross-entropy), sparse CSR kernels for the
//! full-graph baselines (GCN / FastGCN / GTN / HAN), and SGD / Adam
//! optimizers with the paper's L2 regularisation.
//!
//! The design goal is *auditable correctness* rather than peak FLOPs: every
//! differentiable op has a finite-difference gradient check in the test
//! suite, shapes are explicit (no silent broadcasting beyond the single
//! row-broadcast the paper's Eq. 7 bias needs), and all randomness is
//! injected through caller-provided seeded RNGs.
//!
//! ## Quick example
//!
//! ```
//! use widen_tensor::{Tape, Tensor};
//!
//! let mut tape = Tape::new();
//! let a = tape.leaf(Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
//! let b = tape.leaf(Tensor::eye(2));
//! let c = tape.matmul(a, b);
//! let loss = tape.sum(c);
//! tape.backward(loss);
//! assert_eq!(tape.grad(a).unwrap().as_slice(), &[1.0, 1.0, 1.0, 1.0]);
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

mod init;
pub mod kernels;
mod op;
mod optim;
mod params;
mod pool;
mod profile;
mod serialize;
mod sparse;
mod tape;
mod tensor;

pub mod gradcheck;

pub use init::{he_normal, normal, xavier_uniform, zeros_init};
pub use kernels::{
    default_backend, set_default_backend, BackendKind, KernelBackend, Optimized, Reference,
};
pub use op::{Op, OP_KIND_COUNT};
pub use optim::{Adam, AdamConfig, Optimizer, Sgd};
pub use params::{ParamId, ParamStore};
pub use pool::{BufferPool, PoolStats, MAX_BUFFERS_PER_SHAPE};
pub use profile::{OpProfile, ProfileReport};
pub use serialize::{digest64, load_params, save_params, CheckpointError};
pub use sparse::CsrMatrix;
pub use tape::{Tape, Var};
pub use tensor::Tensor;
