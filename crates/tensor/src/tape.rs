//! Reverse-mode autograd tape.

use std::sync::Arc;
use std::time::Instant;

use crate::kernels::{default_backend, BackendKind};
use crate::op::{backward_step, Op};
use crate::pool::{BufferPool, PoolStats};
use crate::profile::{ProfileReport, TapeProfiler};
use crate::sparse::CsrMatrix;
use crate::tensor::Tensor;

/// Handle to a node on a [`Tape`].
///
/// `Var`s are only meaningful for the tape that issued them; mixing handles
/// across tapes is a logic error caught by shape asserts at best.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Var(u32);

impl Var {
    /// Index of the node on its tape.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A single-use computation record.
///
/// Typical training-step usage: create a tape, insert the current parameter
/// values as leaves, build the forward computation through the op methods,
/// call [`Tape::backward`] on the scalar loss, read gradients back with
/// [`Tape::grad`], then drop the tape.
///
/// Ops, values and gradients live in parallel arrays so the backward sweep
/// can read values while writing gradients without cloning.
///
/// An optional per-op profiler ([`Tape::enable_profiling`]) times every
/// forward and backward op; when off (the default) the only cost is one
/// null check per recorded op — no clock reads, no allocation.
///
/// Gradient buffers come from a shape-keyed [`BufferPool`] (enabled by
/// default): [`Tape::backward`] recycles the previous pass's buffers and
/// serves new ones from the free lists, so steady-state training performs
/// zero gradient allocations. Move the pool between the short-lived
/// per-step tapes with [`Tape::take_pool`] / [`Tape::install_pool`] to
/// carry the warm free lists across steps.
///
/// Every dense matmul the tape records — forward and backward — runs on
/// the tape's kernel backend ([`Tape::set_backend`]), which defaults to
/// the process-wide [`default_backend`]. Set it before recording ops; the
/// profiler labels a tape's whole report with one backend.
pub struct Tape {
    ops: Vec<Op>,
    values: Vec<Tensor>,
    grads: Vec<Option<Tensor>>,
    profiler: Option<Box<TapeProfiler>>,
    pool: BufferPool,
    backend: BackendKind,
}

impl Default for Tape {
    fn default() -> Self {
        Self {
            ops: Vec::new(),
            values: Vec::new(),
            grads: Vec::new(),
            profiler: None,
            pool: BufferPool::default(),
            backend: default_backend(),
        }
    }
}

impl Tape {
    /// An empty tape on the process-default kernel backend.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty tape pinned to an explicit kernel backend.
    pub fn with_backend(backend: BackendKind) -> Self {
        Self {
            backend,
            ..Self::default()
        }
    }

    /// Switches the kernel backend used by subsequently recorded ops (and
    /// by [`Tape::backward`]). Call before building the forward pass.
    pub fn set_backend(&mut self, backend: BackendKind) {
        self.backend = backend;
    }

    /// The kernel backend this tape dispatches dense matmuls to.
    pub fn backend(&self) -> BackendKind {
        self.backend
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the tape has no nodes.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Clears ops, values and gradients for reuse, recycling every
    /// gradient buffer into the pool. The pool (with its warm free lists
    /// and counters) and the profiler survive the reset.
    pub fn reset(&mut self) {
        for g in self.grads.drain(..).flatten() {
            self.pool.recycle(g);
        }
        self.ops.clear();
        self.values.clear();
    }

    /// Replaces this tape's gradient-buffer pool — pair with
    /// [`Tape::take_pool`] to thread one pool through a sequence of
    /// short-lived tapes.
    pub fn install_pool(&mut self, pool: BufferPool) {
        self.pool = pool;
    }

    /// Moves the pool out (an empty enabled pool takes its place),
    /// first recycling any gradient buffers still parked on the tape so
    /// the warm working set travels with it.
    pub fn take_pool(&mut self) -> BufferPool {
        for g in self.grads.iter_mut() {
            if let Some(t) = g.take() {
                self.pool.recycle(t);
            }
        }
        std::mem::take(&mut self.pool)
    }

    /// Swaps in a pool that never retains buffers, pinning this tape to
    /// the alloc-per-op gradient path (differential tests).
    pub fn disable_pool(&mut self) {
        self.pool = BufferPool::disabled();
    }

    /// Counters of the tape's gradient-buffer pool.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Turns on per-op profiling for this tape (see [`Tape::take_profile`]).
    pub fn enable_profiling(&mut self) {
        if self.profiler.is_none() {
            self.profiler = Some(Box::default());
        }
    }

    /// Whether per-op profiling is active.
    pub fn profiling_enabled(&self) -> bool {
        self.profiler.is_some()
    }

    /// Extracts the profile recorded so far, leaving profiling enabled with
    /// fresh counters. `None` if profiling was never enabled.
    pub fn take_profile(&mut self) -> Option<ProfileReport> {
        let backend = self.backend.name();
        self.profiler.as_mut().map(|p| {
            let report = p.report(backend);
            **p = TapeProfiler::default();
            report
        })
    }

    /// Clock read for the profiled path; `None` (a null check, nothing
    /// else) when profiling is off.
    #[inline]
    fn prof_start(&self) -> Option<Instant> {
        if self.profiler.is_some() {
            Some(Instant::now())
        } else {
            None
        }
    }

    fn push(&mut self, op: Op, value: Tensor) -> Var {
        debug_assert!(value.all_finite(), "non-finite forward value");
        let id = Var(self.ops.len() as u32);
        self.ops.push(op);
        self.values.push(value);
        id
    }

    /// [`Tape::push`] plus forward-time accounting against `t0` (the
    /// [`Tape::prof_start`] taken before the op's compute).
    #[inline]
    fn push_prof(&mut self, op: Op, value: Tensor, t0: Option<Instant>) -> Var {
        if let Some(t0) = t0 {
            let nanos = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            if let Some(p) = self.profiler.as_mut() {
                p.record_forward(&op, &self.values, &value, nanos);
            }
        }
        self.push(op, value)
    }

    /// Inserts an input tensor (constant or parameter copy).
    pub fn leaf(&mut self, value: Tensor) -> Var {
        self.push(Op::Leaf, value)
    }

    /// Forward value of a node.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.values[v.index()]
    }

    /// Gradient of the most recent [`Tape::backward`] target w.r.t. `v`,
    /// or `None` if the node did not participate / backward has not run.
    pub fn grad(&self, v: Var) -> Option<&Tensor> {
        self.grads.get(v.index()).and_then(|g| g.as_ref())
    }

    /// `A · B`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let t0 = self.prof_start();
        let value = self.value(a).matmul_with(self.value(b), self.backend);
        self.push_prof(Op::MatMul(a, b), value, t0)
    }

    /// `A · Bᵀ`.
    pub fn matmul_nt(&mut self, a: Var, b: Var) -> Var {
        let t0 = self.prof_start();
        let value = self.value(a).matmul_nt_with(self.value(b), self.backend);
        self.push_prof(Op::MatMulNt(a, b), value, t0)
    }

    /// Element-wise sum.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let t0 = self.prof_start();
        let value = self.value(a).zip_map(self.value(b), |x, y| x + y);
        self.push_prof(Op::Add(a, b), value, t0)
    }

    /// Element-wise difference.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let t0 = self.prof_start();
        let value = self.value(a).zip_map(self.value(b), |x, y| x - y);
        self.push_prof(Op::Sub(a, b), value, t0)
    }

    /// Element-wise product (the paper's `⊙`).
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let t0 = self.prof_start();
        let value = self.value(a).zip_map(self.value(b), |x, y| x * y);
        self.push_prof(Op::Mul(a, b), value, t0)
    }

    /// Adds row vector `b` (`1 × c`) to every row of `a`.
    pub fn add_row_broadcast(&mut self, a: Var, b: Var) -> Var {
        let t0 = self.prof_start();
        let (va, vb) = (self.value(a), self.value(b));
        assert_eq!(vb.rows(), 1, "broadcast operand must be a row vector");
        assert_eq!(va.cols(), vb.cols(), "broadcast width mismatch");
        let mut value = va.clone();
        for r in 0..value.rows() {
            let row = value.row_mut(r);
            for (x, &bv) in row.iter_mut().zip(vb.row(0)) {
                *x += bv;
            }
        }
        self.push_prof(Op::AddRowBroadcast(a, b), value, t0)
    }

    /// Scalar multiple.
    pub fn scale(&mut self, a: Var, alpha: f32) -> Var {
        let t0 = self.prof_start();
        let value = self.value(a).map(|x| x * alpha);
        self.push_prof(Op::Scale(a, alpha), value, t0)
    }

    /// ReLU.
    pub fn relu(&mut self, a: Var) -> Var {
        let t0 = self.prof_start();
        let value = self.value(a).map(|x| x.max(0.0));
        self.push_prof(Op::Relu(a), value, t0)
    }

    /// Leaky ReLU.
    pub fn leaky_relu(&mut self, a: Var, slope: f32) -> Var {
        let t0 = self.prof_start();
        let value = self.value(a).map(|x| if x > 0.0 { x } else { x * slope });
        self.push_prof(Op::LeakyRelu(a, slope), value, t0)
    }

    /// tanh.
    pub fn tanh(&mut self, a: Var) -> Var {
        let t0 = self.prof_start();
        let value = self.value(a).map(f32::tanh);
        self.push_prof(Op::Tanh(a), value, t0)
    }

    /// Row-wise softmax.
    pub fn softmax_rows(&mut self, a: Var) -> Var {
        let t0 = self.prof_start();
        let value = self.value(a).softmax_rows();
        self.push_prof(Op::SoftmaxRows(a), value, t0)
    }

    /// Row-wise softmax of `a + mask`, with `mask` a constant additive
    /// attention mask (entries `0` or `-∞`, Eq. 6).
    pub fn masked_softmax_rows(&mut self, a: Var, mask: Arc<Tensor>) -> Var {
        let t0 = self.prof_start();
        let va = self.value(a);
        assert_eq!(va.shape(), mask.shape(), "mask shape mismatch");
        let value = va.zip_map(&mask, |x, m| x + m).softmax_rows();
        self.push_prof(Op::MaskedSoftmaxRows(a, mask), value, t0)
    }

    /// Vertical stack.
    pub fn vstack(&mut self, parts: &[Var]) -> Var {
        let t0 = self.prof_start();
        let tensors: Vec<&Tensor> = parts.iter().map(|p| self.value(*p)).collect();
        let value = Tensor::vstack(&tensors);
        self.push_prof(Op::VStack(parts.to_vec()), value, t0)
    }

    /// Horizontal concatenation.
    pub fn hstack(&mut self, parts: &[Var]) -> Var {
        let t0 = self.prof_start();
        let tensors: Vec<&Tensor> = parts.iter().map(|p| self.value(*p)).collect();
        let value = Tensor::hstack(&tensors);
        self.push_prof(Op::HStack(parts.to_vec()), value, t0)
    }

    /// Gathers rows `indices` of `a`.
    pub fn select_rows(&mut self, a: Var, indices: &[usize]) -> Var {
        let t0 = self.prof_start();
        let value = self.value(a).select_rows(indices);
        self.push_prof(Op::SelectRows(a, Arc::from(indices)), value, t0)
    }

    /// Batched embedding lookup: gathers rows `indices` of `a` (duplicates
    /// allowed), with the gradient scatter-adding back into the source
    /// rows. Identical semantics to [`Tape::select_rows`]; this name is
    /// the batched-execution vocabulary's entry point (one lookup for a
    /// whole chunk instead of one per node).
    pub fn gather_rows(&mut self, a: Var, indices: &[usize]) -> Var {
        self.select_rows(a, indices)
    }

    /// Ragged attention scores: row `i` of the padded output holds
    /// `⟨q_i, k_{start_i + j}⟩` for `j < len_i`, where
    /// `(start_i, len_i) = spans[i]` indexes rows of `k`. Padding columns
    /// are zero and receive no gradient. Spans may overlap (the causal
    /// suffix layout of Eq. 4 relies on this); gradients accumulate.
    pub fn padded_segment_scores(&mut self, q: Var, k: Var, spans: Arc<[(usize, usize)]>) -> Var {
        let t0 = self.prof_start();
        let value = self.value(q).padded_segment_scores(self.value(k), &spans);
        self.push_prof(Op::PaddedSegmentScores(q, k, spans), value, t0)
    }

    /// Segment/ragged masked softmax: row-wise softmax over the first
    /// `lens[r]` columns of a padded score matrix; padding columns of the
    /// result are **exactly** zero (they hold no attention mass).
    ///
    /// # Panics
    /// Panics if `lens.len()` differs from the row count or a length
    /// exceeds the width.
    pub fn padded_softmax_rows(&mut self, a: Var, lens: Arc<[usize]>) -> Var {
        let t0 = self.prof_start();
        let value = self.value(a).padded_softmax_rows(&lens);
        self.push_prof(Op::PaddedSoftmaxRows(a, lens), value, t0)
    }

    /// Per-row weighted sum of value segments: treating `a` as padded
    /// attention weights, computes `out_i = Σ_j a[i][j] · v_{start_i + j}`
    /// (the batched `attn · V` reduction).
    pub fn segment_weighted_sum(&mut self, a: Var, v: Var, spans: Arc<[(usize, usize)]>) -> Var {
        let t0 = self.prof_start();
        let value = self.value(a).segment_weighted_sum(self.value(v), &spans);
        self.push_prof(Op::SegmentWeightedSum(a, v, spans), value, t0)
    }

    /// Per-span mean over rows of `a` (batched Φ-averaging); zero-length
    /// spans yield zero rows.
    pub fn segment_mean_rows(&mut self, a: Var, spans: Arc<[(usize, usize)]>) -> Var {
        let t0 = self.prof_start();
        let value = self.value(a).segment_mean_rows(&spans);
        self.push_prof(Op::SegmentMeanRows(a, spans), value, t0)
    }

    /// Sum of all elements (`1 × 1`).
    pub fn sum(&mut self, a: Var) -> Var {
        let t0 = self.prof_start();
        let value = Tensor::from_vec(1, 1, vec![self.value(a).sum()]);
        self.push_prof(Op::Sum(a), value, t0)
    }

    /// Column-wise mean over rows (`1 × c`).
    pub fn mean_rows(&mut self, a: Var) -> Var {
        let t0 = self.prof_start();
        let va = self.value(a);
        let mut out = Tensor::zeros(1, va.cols());
        for r in 0..va.rows() {
            out.add_scaled(1.0, &Tensor::row_vector(va.row(r)));
        }
        out.scale_inplace(1.0 / va.rows() as f32);
        self.push_prof(Op::MeanRows(a), out, t0)
    }

    /// Row-wise L2 normalisation.
    pub fn l2_normalize_rows(&mut self, a: Var) -> Var {
        let t0 = self.prof_start();
        let value = self.value(a).l2_normalize_rows();
        self.push_prof(Op::L2NormalizeRows(a), value, t0)
    }

    /// Mean softmax cross-entropy of `logits` against integer `labels`
    /// (one label per row). Returns a `1 × 1` loss.
    pub fn softmax_cross_entropy(&mut self, logits: Var, labels: &[usize]) -> Var {
        let t0 = self.prof_start();
        let v = self.value(logits);
        assert_eq!(v.rows(), labels.len(), "one label per logits row");
        let mut total = 0.0f64;
        for (r, &label) in labels.iter().enumerate() {
            assert!(label < v.cols(), "label {label} out of range");
            let row = v.row(r);
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let logsum: f32 = row.iter().map(|&x| (x - max).exp()).sum::<f32>().ln() + max;
            total += f64::from(logsum - row[label]);
        }
        let value = Tensor::from_vec(1, 1, vec![(total / labels.len() as f64) as f32]);
        self.push_prof(
            Op::SoftmaxCrossEntropy(logits, Arc::from(labels)),
            value,
            t0,
        )
    }

    /// Element-wise maximum (Eq. 8's relay-edge maxpool).
    pub fn maxpool2(&mut self, a: Var, b: Var) -> Var {
        let t0 = self.prof_start();
        let value = self.value(a).zip_map(self.value(b), f32::max);
        self.push_prof(Op::MaxPool2(a, b), value, t0)
    }

    /// `S · B` for a constant sparse matrix `S`.
    pub fn spmm(&mut self, csr: Arc<CsrMatrix>, b: Var) -> Var {
        let t0 = self.prof_start();
        let value = csr.spmm(self.value(b));
        self.push_prof(Op::Spmm(csr, b), value, t0)
    }

    /// Transposed copy.
    pub fn transpose(&mut self, a: Var) -> Var {
        let t0 = self.prof_start();
        let value = self.value(a).transpose();
        self.push_prof(Op::Transpose(a), value, t0)
    }

    /// `A · s` for a `1 × 1` scalar variable `s`, with gradient flowing to
    /// both operands (GTN's soft edge-type selection weights).
    pub fn mul_scalar_var(&mut self, a: Var, s: Var) -> Var {
        let t0 = self.prof_start();
        assert_eq!(self.value(s).shape(), (1, 1), "scalar operand must be 1×1");
        let scalar = self.value(s).get(0, 0);
        let value = self.value(a).map(|x| x * scalar);
        self.push_prof(Op::MulScalarVar(a, s), value, t0)
    }

    /// Sums a non-empty list of same-shape variables.
    pub fn add_n(&mut self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "add_n of nothing");
        let mut acc = parts[0];
        for &p in &parts[1..] {
            acc = self.add(acc, p);
        }
        acc
    }

    /// Runs reverse-mode differentiation from scalar node `loss`.
    ///
    /// # Panics
    /// Panics if `loss` is not `1 × 1`.
    pub fn backward(&mut self, loss: Var) {
        assert_eq!(
            self.value(loss).shape(),
            (1, 1),
            "backward target must be scalar"
        );
        // Recycle the previous pass's buffers and reuse the slot vector:
        // with a warm pool every gradient of this pass is served from a
        // free list — zero allocations in steady state.
        for g in self.grads.iter_mut() {
            if let Some(t) = g.take() {
                self.pool.recycle(t);
            }
        }
        self.grads.resize_with(self.ops.len(), || None);
        let mut seed = self.pool.take_zeroed(1, 1);
        seed.as_mut_slice()[0] = 1.0;
        self.grads[loss.index()] = Some(seed);

        for idx in (0..self.ops.len()).rev() {
            let Some(grad_out) = self.grads[idx].take() else {
                continue;
            };
            let t0 = self.prof_start();
            let pool_before = t0.map(|_| (self.pool.hits(), self.pool.misses()));
            backward_step(
                &self.ops[idx],
                &self.values[idx],
                &grad_out,
                &self.values,
                &mut self.grads,
                &mut self.pool,
                self.backend,
            );
            if let Some(t0) = t0 {
                let nanos = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
                let (h0, m0) = pool_before.unwrap_or_default();
                let pool_hits = self.pool.hits() - h0;
                let pool_allocs = self.pool.misses() - m0;
                if let Some(p) = self.profiler.as_mut() {
                    p.record_backward(&self.ops[idx], nanos, pool_hits, pool_allocs);
                }
            }
            self.grads[idx] = Some(grad_out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backward_through_matmul_chain() {
        let mut tape = Tape::new();
        let a = tape.leaf(Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let b = tape.leaf(Tensor::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]));
        let c = tape.matmul(a, b);
        let loss = tape.sum(c);
        tape.backward(loss);
        assert_eq!(tape.grad(a).unwrap().as_slice(), &[1.0; 4]);
        // dB = Aᵀ·1 = column sums of A.
        assert_eq!(tape.grad(b).unwrap().as_slice(), &[4.0, 4.0, 6.0, 6.0]);
    }

    #[test]
    fn grad_absent_for_unused_nodes() {
        let mut tape = Tape::new();
        let a = tape.leaf(Tensor::row_vector(&[1.0]));
        let unused = tape.leaf(Tensor::row_vector(&[9.0]));
        let loss = tape.sum(a);
        tape.backward(loss);
        assert!(tape.grad(unused).is_none());
        assert!(tape.grad(a).is_some());
    }

    #[test]
    fn gradients_accumulate_across_reuse() {
        let mut tape = Tape::new();
        let a = tape.leaf(Tensor::row_vector(&[2.0]));
        let doubled = tape.add(a, a);
        let loss = tape.sum(doubled);
        tape.backward(loss);
        assert_eq!(tape.grad(a).unwrap().as_slice(), &[2.0]);
    }

    #[test]
    fn cross_entropy_value_matches_manual() {
        let mut tape = Tape::new();
        let logits = tape.leaf(Tensor::from_rows(&[&[0.0, 0.0], &[10.0, 0.0]]));
        let loss = tape.softmax_cross_entropy(logits, &[0, 0]);
        // Row 0: -ln(0.5); row 1: ≈ 0; mean ≈ ln(2)/2.
        let expected = 0.5 * std::f32::consts::LN_2;
        assert!((tape.value(loss).get(0, 0) - expected).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "backward target must be scalar")]
    fn backward_rejects_non_scalar() {
        let mut tape = Tape::new();
        let a = tape.leaf(Tensor::zeros(2, 2));
        tape.backward(a);
    }

    #[test]
    fn masked_softmax_blocks_future_positions() {
        let mut tape = Tape::new();
        let scores = tape.leaf(Tensor::from_rows(&[&[1.0, 5.0], &[1.0, 5.0]]));
        // Causal mask per Eq. 6: θ = 0 if row ≤ col else −∞.
        let mask = Tensor::from_rows(&[&[0.0, 0.0], &[f32::NEG_INFINITY, 0.0]]);
        let att = tape.masked_softmax_rows(scores, Arc::new(mask));
        let v = tape.value(att);
        // Row 1 can only attend to position 1.
        assert!((v.get(1, 0)).abs() < 1e-6);
        assert!((v.get(1, 1) - 1.0).abs() < 1e-6);
        // Row 0 attends to both.
        assert!(v.get(0, 0) > 0.0 && v.get(0, 1) > 0.0);
    }

    #[test]
    fn profiler_records_forward_and_backward_ops() {
        let mut tape = Tape::new();
        tape.enable_profiling();
        let a = tape.leaf(Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let b = tape.leaf(Tensor::eye(2));
        let c = tape.matmul(a, b);
        let r = tape.relu(c);
        let loss = tape.sum(r);
        tape.backward(loss);
        let report = tape.take_profile().expect("profiling enabled");
        let names: Vec<&str> = report.ops.iter().map(|o| o.name).collect();
        assert!(names.contains(&"matmul"));
        assert!(names.contains(&"relu"));
        assert!(names.contains(&"sum"));
        let mm = report.ops.iter().find(|o| o.name == "matmul").unwrap();
        assert_eq!(mm.count, 1);
        // (2×2)·(2×2): 2·2·2·2 = 16 FLOPs.
        assert_eq!(mm.flops, 16);
        assert!(mm.bwd_nanos > 0, "backward matmul must be timed");
        assert_eq!(mm.last_shape, "2×2·2×2→2×2");
        // take_profile resets counters but keeps profiling on.
        assert!(tape.profiling_enabled());
        let empty = tape.take_profile().unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn profiler_off_records_nothing() {
        let mut tape = Tape::new();
        let a = tape.leaf(Tensor::row_vector(&[1.0]));
        let loss = tape.sum(a);
        tape.backward(loss);
        assert!(tape.take_profile().is_none());
    }
}
