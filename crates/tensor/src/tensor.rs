//! Dense row-major 2-D tensor.

use rand::Rng;
use rand_distr::{Distribution, StandardNormal};

use crate::kernels::{axpy, default_backend, dot, BackendKind};

/// A dense, row-major matrix of `f32`.
///
/// All values in the WIDEN model are 2-D: node embeddings are `1 × d` row
/// vectors (the paper's convention), message-pack matrices are
/// `(|set|+1) × d`, and attention score matrices are square. Keeping the
/// representation strictly 2-D removes an entire class of broadcasting bugs.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    rows: usize,
    cols: usize,
}

impl std::fmt::Debug for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tensor({}x{})", self.rows, self.cols)?;
        if self.rows * self.cols <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl Tensor {
    /// A `rows × cols` tensor of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            data: vec![0.0; rows * cols],
            rows,
            cols,
        }
    }

    /// A `rows × cols` tensor filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            data: vec![value; rows * cols],
            rows,
            cols,
        }
    }

    /// A `n × n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros(n, n);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Builds a tensor from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape/buffer mismatch");
        Self { data, rows, cols }
    }

    /// Builds a tensor from row slices (test-friendly constructor).
    ///
    /// # Panics
    /// Panics if rows have inconsistent lengths or `rows` is empty.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "from_rows needs at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Self {
            data,
            rows: rows.len(),
            cols,
        }
    }

    /// A `1 × n` row vector.
    pub fn row_vector(values: &[f32]) -> Self {
        Self::from_vec(1, values.len(), values.to_vec())
    }

    /// Samples i.i.d. standard-normal entries scaled by `std`.
    pub fn randn<R: Rng + ?Sized>(rows: usize, cols: usize, std: f32, rng: &mut R) -> Self {
        let data = (0..rows * cols)
            .map(|_| {
                let z: f32 = StandardNormal.sample(rng);
                z * std
            })
            .collect();
        Self { data, rows, cols }
    }

    /// Samples i.i.d. uniform entries in `[lo, hi)`.
    pub fn rand_uniform<R: Rng + ?Sized>(
        rows: usize,
        cols: usize,
        lo: f32,
        hi: f32,
        rng: &mut R,
    ) -> Self {
        let data = (0..rows * cols).map(|_| rng.gen_range(lo..hi)).collect();
        Self { data, rows, cols }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total element count.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable flat row-major view.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Consumes the tensor, yielding its row-major backing buffer.
    #[inline]
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Mutable flat row-major view.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies `src` into row `r`.
    pub fn set_row(&mut self, r: usize, src: &[f32]) {
        assert_eq!(src.len(), self.cols, "row length mismatch");
        self.row_mut(r).copy_from_slice(src);
    }

    /// Appends `src` as a new last row (amortised O(cols) — backing
    /// storage grows geometrically, so streaming node ingestion does not
    /// reallocate the whole matrix per row).
    ///
    /// # Panics
    /// Panics if `src.len() != self.cols()`.
    pub fn push_row(&mut self, src: &[f32]) {
        assert_eq!(src.len(), self.cols, "row length mismatch");
        self.data.extend_from_slice(src);
        self.rows += 1;
    }

    /// Matrix product `self · other` on the process-default backend
    /// ([`crate::default_backend`]).
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        self.matmul_with(other, default_backend())
    }

    /// Matrix product `self · other` on an explicit kernel backend.
    pub fn matmul_with(&self, other: &Tensor, backend: BackendKind) -> Tensor {
        let mut out = Tensor::zeros(self.rows, other.cols);
        self.matmul_acc_with(other, &mut out, backend);
        out
    }

    /// Accumulating matrix product: `out += self · other` on the
    /// process-default backend.
    ///
    /// The kernel behind [`Tensor::matmul`]; calling it directly lets
    /// backward passes accumulate into an existing gradient buffer instead
    /// of allocating a product and adding it in a second sweep.
    ///
    /// # Panics
    /// Panics on inner-dimension or output-shape mismatch.
    pub fn matmul_acc(&self, other: &Tensor, out: &mut Tensor) {
        self.matmul_acc_with(other, out, default_backend());
    }

    /// [`Tensor::matmul_acc`] on an explicit kernel backend.
    pub fn matmul_acc_with(&self, other: &Tensor, out: &mut Tensor, backend: BackendKind) {
        assert_eq!(
            self.cols,
            other.rows,
            "matmul shape mismatch: {:?} x {:?}",
            self.shape(),
            other.shape()
        );
        let (m, k, n) = (self.rows, self.cols, other.cols);
        assert_eq!(out.shape(), (m, n), "matmul_acc output shape mismatch");
        backend
            .dispatch()
            .gemm_nn_acc(m, k, n, &self.data, &other.data, &mut out.data);
    }

    /// Matrix product with transposed right operand: `self · otherᵀ`, on
    /// the process-default backend.
    ///
    /// This is the attention-score kernel `Q · Kᵀ`; computing it directly
    /// avoids materialising the transpose.
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        self.matmul_nt_with(other, default_backend())
    }

    /// [`Tensor::matmul_nt`] on an explicit kernel backend.
    pub fn matmul_nt_with(&self, other: &Tensor, backend: BackendKind) -> Tensor {
        let mut out = Tensor::zeros(self.rows, other.rows);
        self.matmul_nt_acc_with(other, &mut out, backend);
        out
    }

    /// Accumulating product with transposed right operand:
    /// `out += self · otherᵀ` (see [`Tensor::matmul_acc`] for why the
    /// accumulating form exists).
    ///
    /// # Panics
    /// Panics on width or output-shape mismatch.
    pub fn matmul_nt_acc(&self, other: &Tensor, out: &mut Tensor) {
        self.matmul_nt_acc_with(other, out, default_backend());
    }

    /// [`Tensor::matmul_nt_acc`] on an explicit kernel backend.
    pub fn matmul_nt_acc_with(&self, other: &Tensor, out: &mut Tensor, backend: BackendKind) {
        assert_eq!(
            self.cols,
            other.cols,
            "matmul_nt shape mismatch: {:?} x {:?}ᵀ",
            self.shape(),
            other.shape()
        );
        let (m, k, n) = (self.rows, self.cols, other.rows);
        assert_eq!(out.shape(), (m, n), "matmul_nt_acc output shape mismatch");
        backend
            .dispatch()
            .gemm_nt_acc(m, k, n, &self.data, &other.data, &mut out.data);
    }

    /// Matrix product with transposed left operand: `selfᵀ · other`, on
    /// the process-default backend.
    ///
    /// This is the gradient kernel `Aᵀ · G` used throughout backward
    /// passes. Bit-identical to `self.transpose().matmul(other)` for every
    /// thread count — see [`Tensor::matmul_tn_acc`].
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        self.matmul_tn_with(other, default_backend())
    }

    /// [`Tensor::matmul_tn`] on an explicit kernel backend.
    pub fn matmul_tn_with(&self, other: &Tensor, backend: BackendKind) -> Tensor {
        let mut out = Tensor::zeros(self.cols, other.cols);
        self.matmul_tn_acc_with(other, &mut out, backend);
        out
    }

    /// Accumulating product with transposed left operand:
    /// `out += selfᵀ · other` — the weight-gradient kernel of the backward
    /// pass, accumulating straight into the gradient buffer.
    ///
    /// Both backends share one `tn` kernel (see
    /// `kernels::reference::gemm_tn_acc_striped`): column-striped rayon
    /// parallelism where every stripe walks the shared `k` dimension in
    /// increasing order, so results are bit-identical to the
    /// single-threaded kernel — and to `transpose().matmul(other)` on the
    /// reference backend — regardless of thread count.
    ///
    /// # Panics
    /// Panics on row-count or output-shape mismatch.
    pub fn matmul_tn_acc(&self, other: &Tensor, out: &mut Tensor) {
        self.matmul_tn_acc_with(other, out, default_backend());
    }

    /// [`Tensor::matmul_tn_acc`] on an explicit kernel backend.
    pub fn matmul_tn_acc_with(&self, other: &Tensor, out: &mut Tensor, backend: BackendKind) {
        assert_eq!(
            self.rows,
            other.rows,
            "matmul_tn shape mismatch: {:?}ᵀ x {:?}",
            self.shape(),
            other.shape()
        );
        let (m, k, n) = (self.cols, self.rows, other.cols);
        assert_eq!(out.shape(), (m, n), "matmul_tn_acc output shape mismatch");
        backend
            .dispatch()
            .gemm_tn_acc(m, k, n, &self.data, &other.data, &mut out.data);
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Element-wise map into a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            data: self.data.iter().map(|&x| f(x)).collect(),
            rows: self.rows,
            cols: self.cols,
        }
    }

    /// Element-wise combine with another same-shape tensor.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(self.shape(), other.shape(), "zip_map shape mismatch");
        Tensor {
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
            rows: self.rows,
            cols: self.cols,
        }
    }

    /// In-place `self += alpha * other`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add_scaled(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "add_scaled shape mismatch");
        axpy(alpha, &other.data, &mut self.data);
    }

    /// In-place scalar multiply.
    pub fn scale_inplace(&mut self, alpha: f32) {
        for x in &mut self.data {
            *x *= alpha;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for empty tensors).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Index of the maximum entry in row `r`.
    pub fn argmax_row(&self, r: usize) -> usize {
        let row = self.row(r);
        let mut best = 0;
        for (i, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = i;
            }
        }
        best
    }

    /// Index of the minimum entry in row `r`.
    pub fn argmin_row(&self, r: usize) -> usize {
        let row = self.row(r);
        let mut best = 0;
        for (i, &v) in row.iter().enumerate() {
            if v < row[best] {
                best = i;
            }
        }
        best
    }

    /// Gathers the listed rows into a new tensor (duplicates allowed).
    ///
    /// # Panics
    /// Panics if any index is out of bounds.
    pub fn select_rows(&self, indices: &[usize]) -> Tensor {
        let mut out = Tensor::zeros(indices.len(), self.cols);
        for (i, &idx) in indices.iter().enumerate() {
            assert!(idx < self.rows, "row index {idx} out of bounds");
            out.set_row(i, self.row(idx));
        }
        out
    }

    /// Stacks tensors vertically. All operands must share a column count.
    ///
    /// # Panics
    /// Panics if `parts` is empty or column counts differ.
    pub fn vstack(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "vstack of nothing");
        let cols = parts[0].cols;
        let rows: usize = parts.iter().map(|p| p.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for p in parts {
            assert_eq!(p.cols, cols, "vstack column mismatch");
            data.extend_from_slice(&p.data);
        }
        Tensor { data, rows, cols }
    }

    /// Concatenates tensors horizontally. All operands must share a row count.
    ///
    /// # Panics
    /// Panics if `parts` is empty or row counts differ.
    pub fn hstack(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "hstack of nothing");
        let rows = parts[0].rows;
        let cols: usize = parts.iter().map(|p| p.cols).sum();
        let mut out = Tensor::zeros(rows, cols);
        for r in 0..rows {
            let mut offset = 0;
            for p in parts {
                assert_eq!(p.rows, rows, "hstack row mismatch");
                out.data[r * cols + offset..r * cols + offset + p.cols].copy_from_slice(p.row(r));
                offset += p.cols;
            }
        }
        out
    }

    /// Ragged attention scores against per-row key segments.
    ///
    /// `self` is a `B × d` query matrix; `keys` is a flat `R × d` matrix
    /// holding the concatenated key rows of every segment. For each query
    /// row `i` with segment `(start, len) = spans[i]`, writes
    /// `out[i][j] = ⟨q_i, keys[start + j]⟩` for `j < len` into a padded
    /// `B × L_max` output (`L_max = max len`, at least 1). Padding columns
    /// are zero and carry no gradient.
    ///
    /// Uses the same scalar `dot` kernel as [`Tensor::matmul_nt`], so a
    /// segment's scores are bit-identical to the per-segment `Q·Kᵀ` they
    /// replace.
    ///
    /// # Panics
    /// Panics if `spans.len() != self.rows()`, a span overruns `keys`, or
    /// the key width differs from the query width.
    pub fn padded_segment_scores(&self, keys: &Tensor, spans: &[(usize, usize)]) -> Tensor {
        assert_eq!(spans.len(), self.rows, "one span per query row");
        assert_eq!(self.cols, keys.cols, "query/key width mismatch");
        let l_max = spans.iter().map(|&(_, len)| len).max().unwrap_or(0).max(1);
        let mut out = Tensor::zeros(self.rows, l_max);
        for (i, &(start, len)) in spans.iter().enumerate() {
            assert!(start + len <= keys.rows, "span overruns key matrix");
            let q_row = self.row(i);
            let out_row = out.row_mut(i);
            for (j, o) in out_row.iter_mut().enumerate().take(len) {
                *o = dot(q_row, keys.row(start + j));
            }
        }
        out
    }

    /// Row-wise softmax over the first `lens[r]` columns of each row; the
    /// remaining (padding) columns are **exactly** zero. A row with length
    /// 0 is all-zero.
    ///
    /// Runs the same stabilised kernel as [`Tensor::softmax_rows`] on each
    /// valid prefix, so results match an unpadded per-segment softmax
    /// bit-for-bit.
    ///
    /// # Panics
    /// Panics if `lens.len() != self.rows()` or any length exceeds the
    /// column count.
    pub fn padded_softmax_rows(&self, lens: &[usize]) -> Tensor {
        assert_eq!(lens.len(), self.rows, "one length per row");
        let mut out = Tensor::zeros(self.rows, self.cols);
        for (r, &len) in lens.iter().enumerate() {
            assert!(
                len <= self.cols,
                "row length {len} exceeds width {}",
                self.cols
            );
            let valid = &mut out.row_mut(r)[..len];
            valid.copy_from_slice(&self.row(r)[..len]);
            softmax_inplace(valid);
        }
        out
    }

    /// Per-row weighted sum of a value segment: treating `self` as padded
    /// `B × L_max` weights with per-row segments `spans` into the flat
    /// `R × d` matrix `values`, computes
    /// `out[i] = Σ_j self[i][j] · values[start_i + j]` (`j < len_i`).
    ///
    /// Accumulates with the same `axpy` kernel and segment order as the
    /// row-wise [`Tensor::matmul`], preserving bitwise parity with the
    /// per-segment `attn · V` products it batches.
    ///
    /// # Panics
    /// Panics on span/shape mismatches.
    pub fn segment_weighted_sum(&self, values: &Tensor, spans: &[(usize, usize)]) -> Tensor {
        assert_eq!(spans.len(), self.rows, "one span per weight row");
        let mut out = Tensor::zeros(self.rows, values.cols);
        for (i, &(start, len)) in spans.iter().enumerate() {
            assert!(len <= self.cols, "span length exceeds weight width");
            assert!(start + len <= values.rows, "span overruns value matrix");
            let w = &self.data[i * self.cols..i * self.cols + len];
            let out_row = &mut out.data[i * values.cols..(i + 1) * values.cols];
            for (j, &a) in w.iter().enumerate() {
                if a != 0.0 {
                    axpy(a, values.row(start + j), out_row);
                }
            }
        }
        out
    }

    /// Per-segment mean of rows: `out[i] = mean(self[start_i .. start_i+len_i])`.
    /// Zero-length segments produce zero rows.
    ///
    /// Matches the accumulate-then-scale order of the tape's `mean_rows`,
    /// so a single-segment call reproduces it bit-for-bit.
    ///
    /// # Panics
    /// Panics if a span overruns the matrix.
    pub fn segment_mean_rows(&self, spans: &[(usize, usize)]) -> Tensor {
        let mut out = Tensor::zeros(spans.len(), self.cols);
        for (i, &(start, len)) in spans.iter().enumerate() {
            if len == 0 {
                continue;
            }
            assert!(start + len <= self.rows, "span overruns matrix");
            let out_row = &mut out.data[i * self.cols..(i + 1) * self.cols];
            for r in start..start + len {
                axpy(1.0, self.row(r), out_row);
            }
            let inv = 1.0 / len as f32;
            for x in out_row.iter_mut() {
                *x *= inv;
            }
        }
        out
    }

    /// Row-wise softmax (numerically stabilised).
    pub fn softmax_rows(&self) -> Tensor {
        let mut out = self.clone();
        for r in 0..out.rows {
            softmax_inplace(out.row_mut(r));
        }
        out
    }

    /// L2-normalises every row; zero rows are left untouched.
    pub fn l2_normalize_rows(&self) -> Tensor {
        let mut out = self.clone();
        for r in 0..out.rows {
            let row = out.row_mut(r);
            let norm = row.iter().map(|x| x * x).sum::<f32>().sqrt();
            if norm > 0.0 {
                for x in row.iter_mut() {
                    *x /= norm;
                }
            }
        }
        out
    }

    /// Maximum absolute element-wise difference against another tensor.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape(), other.shape());
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }

    /// True if all entries are finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

/// Numerically-stable in-place softmax over a slice.
pub(crate) fn softmax_inplace(row: &mut [f32]) {
    if row.is_empty() {
        return;
    }
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    if max == f32::NEG_INFINITY {
        // Entire row masked out; define the result as uniform to stay finite.
        let u = 1.0 / row.len() as f32;
        for x in row.iter_mut() {
            *x = u;
        }
        return;
    }
    let mut sum = 0.0;
    for x in row.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    for x in row.iter_mut() {
        *x /= sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn constructors_and_accessors() {
        let t = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(t.shape(), (2, 2));
        assert_eq!(t.get(1, 0), 3.0);
        assert_eq!(t.row(0), &[1.0, 2.0]);
        assert_eq!(Tensor::eye(3).get(2, 2), 1.0);
        assert_eq!(Tensor::eye(3).get(2, 1), 0.0);
        assert_eq!(Tensor::full(2, 2, 7.0).sum(), 28.0);
    }

    #[test]
    #[should_panic(expected = "shape/buffer mismatch")]
    fn from_vec_rejects_bad_shape() {
        let _ = Tensor::from_vec(2, 2, vec![1.0; 3]);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Tensor::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Tensor::randn(5, 5, 1.0, &mut rng);
        let c = a.matmul(&Tensor::eye(5));
        assert!(a.max_abs_diff(&c) < 1e-6);
    }

    #[test]
    fn matmul_nt_equals_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = Tensor::randn(3, 7, 1.0, &mut rng);
        let b = Tensor::randn(4, 7, 1.0, &mut rng);
        let direct = a.matmul_nt(&b);
        let explicit = a.matmul(&b.transpose());
        assert!(direct.max_abs_diff(&explicit) < 1e-5);
    }

    #[test]
    fn matmul_tn_equals_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = Tensor::randn(7, 3, 1.0, &mut rng);
        let b = Tensor::randn(7, 4, 1.0, &mut rng);
        let direct = a.matmul_tn(&b);
        let explicit = a.transpose().matmul(&b);
        assert!(direct.max_abs_diff(&explicit) < 1e-5);
    }

    #[test]
    fn large_matmul_parallel_path_is_consistent() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = Tensor::randn(80, 70, 0.5, &mut rng);
        let b = Tensor::randn(70, 90, 0.5, &mut rng);
        let c = a.matmul(&b);
        // Cross-check a few entries against scalar dot products.
        for &(i, j) in &[(0, 0), (17, 33), (79, 89)] {
            let expected: f32 = (0..70).map(|k| a.get(i, k) * b.get(k, j)).sum();
            assert!((c.get(i, j) - expected).abs() < 1e-3);
        }
    }

    #[test]
    fn large_matmul_tn_parallel_is_bitwise_serial() {
        // The striped path must agree bit-for-bit with the explicit
        // transpose (the serial k-order) for any stripe width — including
        // uneven tails. Stripe widths are pinned so the striped body is
        // exercised even on single-core hosts, where the public entry
        // point would fall back to serial.
        let mut rng = StdRng::seed_from_u64(7);
        let a = Tensor::randn(70, 80, 0.5, &mut rng);
        let b = Tensor::randn(70, 90, 0.5, &mut rng);
        const { assert!((80 * 70 * 90) >= crate::kernels::PAR_MATMUL_THRESHOLD) };
        let explicit = a.transpose().matmul(&b);
        for stripe in [1, 7, 32, 80, 100] {
            let mut striped = Tensor::zeros(80, 90);
            crate::kernels::reference::gemm_tn_acc_striped(
                80,
                70,
                90,
                a.as_slice(),
                b.as_slice(),
                striped.as_mut_slice(),
                stripe,
            );
            assert_eq!(striped.as_slice(), explicit.as_slice(), "stripe {stripe}");
        }
        // And the public entry point, whichever path it picks here.
        let direct = a.matmul_tn(&b);
        assert_eq!(direct.as_slice(), explicit.as_slice());
    }

    #[test]
    fn acc_kernels_accumulate_on_top_of_existing_values() {
        let mut rng = StdRng::seed_from_u64(8);
        let a = Tensor::randn(4, 6, 1.0, &mut rng);
        let b = Tensor::randn(6, 5, 1.0, &mut rng);
        let bt = b.transpose();

        let mut acc = Tensor::full(4, 5, 2.0);
        a.matmul_acc(&b, &mut acc);
        let mut expected = a.matmul(&b);
        expected.add_scaled(1.0, &Tensor::full(4, 5, 2.0));
        assert!(acc.max_abs_diff(&expected) < 1e-6);

        let mut acc_nt = Tensor::full(4, 5, -1.0);
        a.matmul_nt_acc(&bt, &mut acc_nt);
        let mut expected_nt = a.matmul_nt(&bt);
        expected_nt.add_scaled(1.0, &Tensor::full(4, 5, -1.0));
        assert!(acc_nt.max_abs_diff(&expected_nt) < 1e-6);

        let at = a.transpose();
        let mut acc_tn = Tensor::full(4, 5, 0.5);
        at.matmul_tn_acc(&b, &mut acc_tn);
        let mut expected_tn = at.matmul_tn(&b);
        expected_tn.add_scaled(1.0, &Tensor::full(4, 5, 0.5));
        assert!(acc_tn.max_abs_diff(&expected_tn) < 1e-6);
    }

    #[test]
    fn zero_skip_keeps_negative_zero_and_subnormals_exact() {
        // -0.0 and subnormal multipliers must flow through the kernels:
        // results must be bitwise equal to the explicit transpose product.
        let sub = f32::MIN_POSITIVE / 2.0;
        let a = Tensor::from_rows(&[&[-0.0, sub], &[0.0, -sub], &[1.0e30, -0.0]]);
        let b = Tensor::from_rows(&[&[1.0, -1.0], &[2.0, 0.5], &[-3.0, 4.0]]).transpose();
        let direct = a.transpose().matmul_tn(&b);
        let explicit = a.matmul(&b);
        assert_eq!(direct.as_slice(), explicit.as_slice());
    }

    #[test]
    fn softmax_rows_sum_to_one_and_order_preserved() {
        let t = Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[-1.0, 0.0, 100.0]]);
        let s = t.softmax_rows();
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
        assert!(s.get(0, 2) > s.get(0, 1) && s.get(0, 1) > s.get(0, 0));
        assert!(s.get(1, 2) > 0.999);
    }

    #[test]
    fn softmax_fully_masked_row_is_uniform() {
        let mut row = vec![f32::NEG_INFINITY; 4];
        softmax_inplace(&mut row);
        for &x in &row {
            assert!((x - 0.25).abs() < 1e-6);
        }
    }

    #[test]
    fn l2_normalize_rows_gives_unit_rows() {
        let t = Tensor::from_rows(&[&[3.0, 4.0], &[0.0, 0.0]]);
        let n = t.l2_normalize_rows();
        assert!((n.get(0, 0) - 0.6).abs() < 1e-6);
        assert!((n.get(0, 1) - 0.8).abs() < 1e-6);
        // Zero row untouched, no NaN.
        assert_eq!(n.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn select_rows_gathers_with_duplicates() {
        let t = Tensor::from_rows(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]);
        let g = t.select_rows(&[2, 0, 2]);
        assert_eq!(g.as_slice(), &[3.0, 3.0, 1.0, 1.0, 3.0, 3.0]);
    }

    #[test]
    fn vstack_and_hstack_shapes() {
        let a = Tensor::from_rows(&[&[1.0, 2.0]]);
        let b = Tensor::from_rows(&[&[3.0, 4.0], &[5.0, 6.0]]);
        let v = Tensor::vstack(&[&a, &b]);
        assert_eq!(v.shape(), (3, 2));
        assert_eq!(v.row(2), &[5.0, 6.0]);

        let c = Tensor::from_rows(&[&[9.0]]);
        let h = Tensor::hstack(&[&a, &c]);
        assert_eq!(h.shape(), (1, 3));
        assert_eq!(h.row(0), &[1.0, 2.0, 9.0]);
    }

    #[test]
    fn argminmax_rows() {
        let t = Tensor::from_rows(&[&[0.3, 0.1, 0.6]]);
        assert_eq!(t.argmax_row(0), 2);
        assert_eq!(t.argmin_row(0), 1);
    }

    #[test]
    fn transpose_round_trips() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = Tensor::randn(4, 9, 1.0, &mut rng);
        assert!(a.max_abs_diff(&a.transpose().transpose()) < 1e-9);
    }

    #[test]
    fn padded_segment_scores_match_per_segment_matmul_nt() {
        let mut rng = StdRng::seed_from_u64(6);
        let q = Tensor::randn(2, 3, 1.0, &mut rng);
        let keys = Tensor::randn(5, 3, 1.0, &mut rng);
        let spans = [(0usize, 2usize), (2, 3)];
        let scores = q.padded_segment_scores(&keys, &spans);
        assert_eq!(scores.shape(), (2, 3));
        // Row 0: keys 0..2, padding col exactly zero.
        let q0 = Tensor::row_vector(q.row(0));
        let k0 = keys.select_rows(&[0, 1]);
        let expect0 = q0.matmul_nt(&k0);
        assert_eq!(&scores.row(0)[..2], expect0.row(0));
        assert_eq!(scores.get(0, 2), 0.0);
        // Row 1: keys 2..5.
        let q1 = Tensor::row_vector(q.row(1));
        let k1 = keys.select_rows(&[2, 3, 4]);
        let expect1 = q1.matmul_nt(&k1);
        assert_eq!(scores.row(1), expect1.row(0));
    }

    #[test]
    fn padded_softmax_rows_zero_mass_on_padding() {
        let t = Tensor::from_rows(&[&[1.0, 2.0, 99.0], &[3.0, 4.0, 5.0], &[7.0, 8.0, 9.0]]);
        let s = t.padded_softmax_rows(&[2, 3, 0]);
        // Valid prefixes are proper distributions.
        assert!((s.row(0)[..2].iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!((s.row(1).iter().sum::<f32>() - 1.0).abs() < 1e-6);
        // Padding / empty rows are exactly zero — not merely small.
        assert_eq!(s.get(0, 2), 0.0);
        assert_eq!(s.row(2), &[0.0, 0.0, 0.0]);
        // Prefix softmax agrees bitwise with the unpadded kernel.
        let full = Tensor::row_vector(&[1.0, 2.0]).softmax_rows();
        assert_eq!(&s.row(0)[..2], full.row(0));
    }

    #[test]
    fn segment_weighted_sum_matches_per_segment_matmul() {
        let mut rng = StdRng::seed_from_u64(7);
        let values = Tensor::randn(5, 4, 1.0, &mut rng);
        let w = Tensor::from_rows(&[&[0.25, 0.75, 0.0], &[0.2, 0.3, 0.5]]);
        let spans = [(0usize, 2usize), (2, 3)];
        let out = w.segment_weighted_sum(&values, &spans);
        let w0 = Tensor::row_vector(&[0.25, 0.75]);
        let expect0 = w0.matmul(&values.select_rows(&[0, 1]));
        assert_eq!(out.row(0), expect0.row(0));
        let w1 = Tensor::row_vector(&[0.2, 0.3, 0.5]);
        let expect1 = w1.matmul(&values.select_rows(&[2, 3, 4]));
        assert_eq!(out.row(1), expect1.row(0));
    }

    #[test]
    fn segment_mean_rows_averages_and_zeroes_empty() {
        let t = Tensor::from_rows(&[&[1.0, 3.0], &[3.0, 5.0], &[10.0, 20.0]]);
        let out = t.segment_mean_rows(&[(0, 2), (2, 1), (0, 0)]);
        assert_eq!(out.row(0), &[2.0, 4.0]);
        assert_eq!(out.row(1), &[10.0, 20.0]);
        assert_eq!(out.row(2), &[0.0, 0.0]);
    }

    #[test]
    fn add_scaled_and_scale_inplace() {
        let mut a = Tensor::from_rows(&[&[1.0, 2.0]]);
        let b = Tensor::from_rows(&[&[10.0, 20.0]]);
        a.add_scaled(0.5, &b);
        assert_eq!(a.as_slice(), &[6.0, 12.0]);
        a.scale_inplace(2.0);
        assert_eq!(a.as_slice(), &[12.0, 24.0]);
    }
}
