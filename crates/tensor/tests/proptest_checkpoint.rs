//! Property tests of the checkpoint serializer: `save_params ∘ load_params`
//! preserves names, shapes, and values bit-exactly, while *any* corruption —
//! truncation at an arbitrary offset, an arbitrary single-byte flip, or
//! trailing garbage — surfaces as `Err`, never a panic.

use proptest::prelude::*;
use widen_tensor::{load_params, save_params, ParamStore, Tensor};

/// A small random ParamStore: 1–4 named parameters with 1×1 … 5×5 shapes.
fn store_strategy() -> impl Strategy<Value = ParamStore> {
    (
        prop::collection::vec((1usize..6, 1usize..6), 1..5),
        prop::collection::vec(-4.0f32..4.0, 64),
    )
        .prop_map(|(shapes, pool)| {
            let mut store = ParamStore::new();
            let mut k = 0usize;
            for (i, (rows, cols)) in shapes.into_iter().enumerate() {
                let data: Vec<f32> = (0..rows * cols)
                    .map(|_| {
                        let v = pool[k % pool.len()];
                        k += 1;
                        v
                    })
                    .collect();
                store.register(format!("param.{i}"), Tensor::from_vec(rows, cols, data));
            }
            store
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn roundtrip_preserves_names_shapes_values_exactly(store in store_strategy()) {
        let bytes = save_params(&store);
        let loaded = load_params(&bytes).expect("valid checkpoint loads");
        prop_assert_eq!(loaded.len(), store.len());
        for ((_, name_a, t_a), (_, name_b, t_b)) in store.iter().zip(loaded.iter()) {
            prop_assert_eq!(name_a, name_b);
            prop_assert_eq!(t_a.shape(), t_b.shape());
            let (rows, cols) = t_a.shape();
            for r in 0..rows {
                for c in 0..cols {
                    // Bit-exact, not approximate: checkpoints are identity.
                    prop_assert_eq!(t_a.get(r, c).to_bits(), t_b.get(r, c).to_bits());
                }
            }
        }
    }

    #[test]
    fn truncation_at_any_offset_errors_without_panic(
        store in store_strategy(),
        raw_cut in 0usize..1_000_000,
    ) {
        let bytes = save_params(&store);
        let cut = raw_cut % bytes.len();
        prop_assert!(load_params(&bytes[..cut]).is_err(), "cut at {cut} must not load");
    }

    #[test]
    fn any_single_byte_flip_is_rejected(
        store in store_strategy(),
        raw_offset in 0usize..1_000_000,
        mask in 1usize..256,
    ) {
        let bytes = save_params(&store);
        let mut corrupt = bytes.to_vec();
        let offset = raw_offset % corrupt.len();
        corrupt[offset] ^= mask as u8;
        prop_assert!(
            load_params(&corrupt).is_err(),
            "flip of byte {offset} by {mask:#x} must not load"
        );
    }

    #[test]
    fn trailing_garbage_is_rejected(store in store_strategy(), extra in 1usize..24) {
        let bytes = save_params(&store);
        let mut padded = bytes.to_vec();
        padded.extend(std::iter::repeat_n(0xAB, extra));
        prop_assert!(load_params(&padded).is_err());
    }
}
