//! Ad-hoc kernel timing probe (ignored by default; run with --ignored).

use std::time::Instant;
use widen_tensor::{KernelBackend, Optimized, Reference};

fn bench(label: &str, reps: usize, mut f: impl FnMut()) {
    // warmup
    f();
    let t0 = Instant::now();
    for _ in 0..reps {
        f();
    }
    let ms = t0.elapsed().as_secs_f64() * 1e3 / reps as f64;
    println!("{label:40} {ms:9.3} ms");
}

#[test]
#[ignore]
fn kernel_timings() {
    let mk = |len: usize| -> Vec<f32> { (0..len).map(|i| (i % 17) as f32 * 0.1 - 0.8).collect() };

    // Projection backward shapes: nt m=1217 k=128 n=128; tn m=128 k=1217 n=128
    let a = mk(1217 * 128);
    let b = mk(128 * 128);
    let mut out = vec![0.0f32; 1217 * 128];
    bench("nt 1217x128 . (128x128)^T ref", 20, || {
        Reference.gemm_nt_acc(1217, 128, 128, &a, &b, &mut out)
    });
    bench("nt 1217x128 . (128x128)^T opt", 20, || {
        Optimized.gemm_nt_acc(1217, 128, 128, &a, &b, &mut out)
    });

    let mut out2 = vec![0.0f32; 128 * 128];
    bench("tn (1217x128)^T . 1217x128 ref", 20, || {
        Reference.gemm_tn_acc(128, 1217, 128, &a, &a[..1217 * 128], &mut out2)
    });
    bench("tn (1217x128)^T . 1217x128 opt", 20, || {
        Optimized.gemm_tn_acc(128, 1217, 128, &a, &a[..1217 * 128], &mut out2)
    });

    // nn backward shape (MatMulNt grad): m=1217 k=128 n=128
    let mut out3 = vec![0.0f32; 1217 * 128];
    bench("nn 1217x128 . 128x128 ref", 20, || {
        Reference.gemm_nn_acc(1217, 128, 128, &a, &b, &mut out3)
    });
    bench("nn 1217x128 . 128x128 opt", 20, || {
        Optimized.gemm_nn_acc(1217, 128, 128, &a, &b, &mut out3)
    });

    // Flat-pack backward shapes: nt m=12600 k=128 n=128; tn m=128 k=12600 n=128
    let big = mk(12600 * 128);
    let mut bout = vec![0.0f32; 12600 * 128];
    bench("nt 12600x128 . (128x128)^T ref", 5, || {
        Reference.gemm_nt_acc(12600, 128, 128, &big, &b, &mut bout)
    });
    bench("nt 12600x128 . (128x128)^T opt", 5, || {
        Optimized.gemm_nt_acc(12600, 128, 128, &big, &b, &mut bout)
    });
    let mut bout2 = vec![0.0f32; 128 * 128];
    bench("tn (12600x128)^T . 12600x128 ref", 5, || {
        Reference.gemm_tn_acc(128, 12600, 128, &big, &big, &mut bout2)
    });
    bench("tn (12600x128)^T . 12600x128 opt", 5, || {
        Optimized.gemm_tn_acc(128, 12600, 128, &big, &big, &mut bout2)
    });
    bench("nn 12600x128 . 128x128 ref", 5, || {
        Reference.gemm_nn_acc(12600, 128, 128, &big, &b, &mut bout)
    });
    bench("nn 12600x128 . 128x128 opt", 5, || {
        Optimized.gemm_nn_acc(12600, 128, 128, &big, &b, &mut bout)
    });

    // Classifier shapes m=60 k=128 n=3
    let ca = mk(60 * 128);
    let cb = mk(128 * 3);
    let mut cout = vec![0.0f32; 60 * 3];
    bench("nn 60x128 . 128x3 ref", 2000, || {
        Reference.gemm_nn_acc(60, 128, 3, &ca, &cb, &mut cout)
    });
    bench("nn 60x128 . 128x3 opt", 2000, || {
        Optimized.gemm_nn_acc(60, 128, 3, &ca, &cb, &mut cout)
    });
    // Classifier backward: nt m=60 k=3 n=128 ; tn m=128 k=60 n=3
    let g = mk(60 * 3);
    let mut gout = vec![0.0f32; 60 * 128];
    bench("nt 60x3 . (128x3)^T ref", 2000, || {
        Reference.gemm_nt_acc(60, 3, 128, &g, &cb, &mut gout)
    });
    bench("nt 60x3 . (128x3)^T opt", 2000, || {
        Optimized.gemm_nt_acc(60, 3, 128, &g, &cb, &mut gout)
    });
    let mut tout = vec![0.0f32; 128 * 3];
    bench("tn (60x128)^T . 60x3 ref", 2000, || {
        Reference.gemm_tn_acc(128, 60, 3, &ca, &g, &mut tout)
    });
    bench("tn (60x128)^T . 60x3 opt", 2000, || {
        Optimized.gemm_tn_acc(128, 60, 3, &ca, &g, &mut tout)
    });
}
