//! Edge-case tests for autograd ops that the main gradcheck suite touches
//! only incidentally: single-operand stacks, add_n folding, broadcast
//! gradients, scalar gating and mixed-op DAGs.

use std::sync::Arc;
use widen_tensor::{CsrMatrix, Tape, Tensor};

#[test]
fn vstack_of_one_behaves_like_identity() {
    let mut tape = Tape::new();
    let a = tape.leaf(Tensor::from_rows(&[&[1.0, 2.0]]));
    let v = tape.vstack(&[a]);
    assert_eq!(tape.value(v).as_slice(), &[1.0, 2.0]);
    let loss = tape.sum(v);
    tape.backward(loss);
    assert_eq!(tape.grad(a).unwrap().as_slice(), &[1.0, 1.0]);
}

#[test]
fn add_n_folds_multiple_operands() {
    let mut tape = Tape::new();
    let parts: Vec<_> = (1..=4)
        .map(|k| tape.leaf(Tensor::row_vector(&[k as f32])))
        .collect();
    let total = tape.add_n(&parts);
    assert_eq!(tape.value(total).get(0, 0), 10.0);
    let loss = tape.sum(total);
    tape.backward(loss);
    for p in parts {
        assert_eq!(tape.grad(p).unwrap().get(0, 0), 1.0);
    }
}

#[test]
fn row_broadcast_gradient_sums_over_rows() {
    let mut tape = Tape::new();
    let a = tape.leaf(Tensor::zeros(3, 2));
    let b = tape.leaf(Tensor::row_vector(&[1.0, -1.0]));
    let out = tape.add_row_broadcast(a, b);
    let loss = tape.sum(out);
    tape.backward(loss);
    // b receives one unit of gradient per row of a.
    assert_eq!(tape.grad(b).unwrap().as_slice(), &[3.0, 3.0]);
}

#[test]
fn leaky_relu_passes_scaled_negatives() {
    let mut tape = Tape::new();
    let a = tape.leaf(Tensor::row_vector(&[-2.0, 3.0]));
    let out = tape.leaky_relu(a, 0.1);
    let v = tape.value(out);
    assert!((v.get(0, 0) + 0.2).abs() < 1e-6);
    assert_eq!(v.get(0, 1), 3.0);
    let loss = tape.sum(out);
    tape.backward(loss);
    let g = tape.grad(a).unwrap();
    assert!((g.get(0, 0) - 0.1).abs() < 1e-6);
    assert_eq!(g.get(0, 1), 1.0);
}

#[test]
fn mul_scalar_var_gates_and_routes_gradient() {
    let mut tape = Tape::new();
    let a = tape.leaf(Tensor::row_vector(&[2.0, 4.0]));
    let s = tape.leaf(Tensor::from_vec(1, 1, vec![0.5]));
    let out = tape.mul_scalar_var(a, s);
    assert_eq!(tape.value(out).as_slice(), &[1.0, 2.0]);
    let loss = tape.sum(out);
    tape.backward(loss);
    assert_eq!(tape.grad(a).unwrap().as_slice(), &[0.5, 0.5]);
    // ds = Σ a = 6.
    assert_eq!(tape.grad(s).unwrap().get(0, 0), 6.0);
}

#[test]
fn select_rows_accumulates_duplicate_gradients() {
    let mut tape = Tape::new();
    let a = tape.leaf(Tensor::from_rows(&[&[1.0], &[2.0]]));
    // Row 0 selected twice: its gradient must double.
    let sel = tape.select_rows(a, &[0, 0, 1]);
    let loss = tape.sum(sel);
    tape.backward(loss);
    assert_eq!(tape.grad(a).unwrap().as_slice(), &[2.0, 1.0]);
}

#[test]
fn spmm_with_empty_rows_is_well_defined() {
    let csr = Arc::new(CsrMatrix::from_coo(3, 2, &[(0, 1, 2.0)]));
    let mut tape = Tape::new();
    let x = tape.leaf(Tensor::from_rows(&[&[1.0], &[5.0]]));
    let y = tape.spmm(csr, x);
    let v = tape.value(y);
    assert_eq!(v.as_slice(), &[10.0, 0.0, 0.0]);
    let loss = tape.sum(y);
    tape.backward(loss);
    // Only column 1 of x feeds the output.
    assert_eq!(tape.grad(x).unwrap().as_slice(), &[0.0, 2.0]);
}

#[test]
fn mixed_dag_with_shared_subexpression() {
    // y = relu(W x); loss = Σ(y ⊙ y) + Σ y — y is used twice.
    let mut tape = Tape::new();
    let x = tape.leaf(Tensor::from_rows(&[&[1.0], &[1.0]]));
    let w = tape.leaf(Tensor::from_rows(&[&[2.0, -1.0]]));
    let wx = tape.matmul(w, x); // (1,1) = 1.0
    let y = tape.relu(wx);
    let sq = tape.mul(y, y);
    let s1 = tape.sum(sq);
    let s2 = tape.sum(y);
    let loss = tape.add(s1, s2);
    tape.backward(loss);
    // dy = 2y + 1 = 3; dW = dy·xᵀ through relu (active).
    let gw = tape.grad(w).unwrap();
    assert_eq!(gw.as_slice(), &[3.0, 3.0]);
}

#[test]
fn tanh_saturates_gradient() {
    let mut tape = Tape::new();
    let a = tape.leaf(Tensor::row_vector(&[10.0, 0.0]));
    let t = tape.tanh(a);
    let loss = tape.sum(t);
    tape.backward(loss);
    let g = tape.grad(a).unwrap();
    assert!(g.get(0, 0) < 1e-6, "saturated region has ~zero gradient");
    assert!((g.get(0, 1) - 1.0).abs() < 1e-6, "origin has unit gradient");
}

#[test]
fn masked_softmax_gradient_ignores_masked_positions() {
    let mut tape = Tape::new();
    let scores = tape.leaf(Tensor::from_rows(&[&[1.0, 2.0, 3.0]]));
    let mut mask = Tensor::zeros(1, 3);
    mask.set(0, 2, f32::NEG_INFINITY);
    let att = tape.masked_softmax_rows(scores, Arc::new(mask));
    // Gradient of the *masked* output entry w.r.t. scores must be zero and
    // the masked probability itself must be zero.
    assert!(tape.value(att).get(0, 2) < 1e-9);
    let picked = tape.select_rows(att, &[0]);
    let loss = tape.sum(picked);
    tape.backward(loss);
    // Σ softmax = 1 identically ⇒ gradient ≈ 0 everywhere.
    let g = tape.grad(scores).unwrap();
    assert!(g.frobenius_norm() < 1e-6);
}
