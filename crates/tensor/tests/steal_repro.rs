//! Temporary review repro: nested rayon + optimized backend pack scratch.

use rayon::prelude::*;
use widen_tensor::{BackendKind, Tensor};

#[test]
fn optimized_nn_inside_outer_par_iter() {
    // Outer parallelism mimicking trainer::train_batch / model::infer_rows:
    // many outer tasks, each running a large optimized-backend matmul whose
    // inner kernel also parallelises (work >= 64^3, m > MR).
    let a = Tensor::from_fn(64, 128, |i, j| ((i * 131 + j * 17) % 97) as f32 * 0.01);
    let b = Tensor::from_fn(128, 128, |i, j| ((i * 29 + j * 13) % 89) as f32 * 0.01);
    for _round in 0..50 {
        (0..64usize).into_par_iter().for_each(|_| {
            let _c = a.matmul_with(&b, BackendKind::Optimized);
        });
    }
}
