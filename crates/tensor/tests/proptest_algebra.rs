//! Property-based tests of the tensor algebra and autograd invariants.

use proptest::prelude::*;
use widen_tensor::{load_params, save_params, CsrMatrix, ParamStore, Tape, Tensor};

fn small_tensor(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    prop::collection::vec(-3.0f32..3.0, rows * cols)
        .prop_map(move |data| Tensor::from_vec(rows, cols, data))
}

/// Adversarial finite floats for kernel equivalence tests: exact zeros of
/// both signs, subnormals, huge and tiny magnitudes, plus ordinary values.
fn hostile_float() -> impl Strategy<Value = f32> {
    (0usize..14, -3.0f32..3.0).prop_map(|(pick, ordinary)| match pick {
        0 => 0.0,
        1 => -0.0,
        2 => f32::MIN_POSITIVE / 2.0,  // subnormal
        3 => -f32::MIN_POSITIVE / 4.0, // subnormal
        4 => f32::MIN_POSITIVE,
        5 => 1.0e30,
        6 => -1.0e30,
        7 => 1.0e-30,
        8 => 1.0,
        9 => -1.0,
        _ => ordinary,
    })
}

fn hostile_tensor(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    prop::collection::vec(hostile_float(), rows * cols)
        .prop_map(move |data| Tensor::from_vec(rows, cols, data))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn matmul_distributes_over_addition(
        a in small_tensor(3, 4),
        b in small_tensor(4, 2),
        c in small_tensor(4, 2),
    ) {
        // A(B + C) = AB + AC
        let bc = b.zip_map(&c, |x, y| x + y);
        let lhs = a.matmul(&bc);
        let mut rhs = a.matmul(&b);
        rhs.add_scaled(1.0, &a.matmul(&c));
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-4);
    }

    #[test]
    fn matmul_transpose_identity(
        a in small_tensor(3, 5),
        b in small_tensor(5, 2),
    ) {
        // (AB)ᵀ = BᵀAᵀ
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-4);
    }

    #[test]
    fn matmul_tn_is_bitwise_transpose_matmul_over_hostile_floats(
        a in hostile_tensor(6, 4),
        b in hostile_tensor(6, 5),
    ) {
        // The dedicated Aᵀ·B kernel (with its +0.0-only sparsity
        // short-circuit) must agree bit-for-bit with the explicit
        // transpose product — including -0.0, subnormal and huge inputs.
        let direct = a.matmul_tn(&b);
        let explicit = a.transpose().matmul(&b);
        let direct_bits: Vec<u32> = direct.as_slice().iter().map(|x| x.to_bits()).collect();
        let explicit_bits: Vec<u32> = explicit.as_slice().iter().map(|x| x.to_bits()).collect();
        prop_assert_eq!(direct_bits, explicit_bits);
    }

    #[test]
    fn acc_kernels_match_alloc_kernels_over_hostile_floats(
        a in hostile_tensor(3, 4),
        b in hostile_tensor(4, 2),
    ) {
        let mut acc = Tensor::zeros(3, 2);
        a.matmul_acc(&b, &mut acc);
        let plain = a.matmul(&b);
        prop_assert_eq!(acc.as_slice(), plain.as_slice());

        let bt = b.transpose();
        let mut acc_nt = Tensor::zeros(3, 2);
        a.matmul_nt_acc(&bt, &mut acc_nt);
        let plain_nt = a.matmul_nt(&bt);
        prop_assert_eq!(acc_nt.as_slice(), plain_nt.as_slice());

        let mut acc_tn = Tensor::zeros(3, 2);
        let at = a.transpose();
        at.matmul_tn_acc(&b, &mut acc_tn);
        let plain_tn = at.matmul_tn(&b);
        prop_assert_eq!(acc_tn.as_slice(), plain_tn.as_slice());
    }

    #[test]
    fn softmax_is_shift_invariant(row in prop::collection::vec(-5.0f32..5.0, 1..12)) {
        let t = Tensor::row_vector(&row);
        let shifted = t.map(|x| x + 2.5);
        let a = t.softmax_rows();
        let b = shifted.softmax_rows();
        prop_assert!(a.max_abs_diff(&b) < 1e-5);
        let sum: f32 = a.row(0).iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-5);
    }

    #[test]
    fn l2_normalized_rows_have_unit_norm(t in small_tensor(4, 6)) {
        let n = t.l2_normalize_rows();
        for r in 0..4 {
            let orig_norm: f32 = t.row(r).iter().map(|x| x * x).sum::<f32>().sqrt();
            let norm: f32 = n.row(r).iter().map(|x| x * x).sum::<f32>().sqrt();
            if orig_norm > 1e-3 {
                prop_assert!((norm - 1.0).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn spmm_agrees_with_dense_matmul(
        triplets in prop::collection::vec((0usize..5, 0usize..5, -2.0f32..2.0), 0..15),
        x in small_tensor(5, 3),
    ) {
        let csr = CsrMatrix::from_coo(5, 5, &triplets);
        let sparse = csr.spmm(&x);
        let dense = csr.to_dense().matmul(&x);
        prop_assert!(sparse.max_abs_diff(&dense) < 1e-4);
    }

    #[test]
    fn spspmm_agrees_with_dense(
        ta in prop::collection::vec((0usize..4, 0usize..4, -2.0f32..2.0), 0..10),
        tb in prop::collection::vec((0usize..4, 0usize..4, -2.0f32..2.0), 0..10),
    ) {
        let a = CsrMatrix::from_coo(4, 4, &ta);
        let b = CsrMatrix::from_coo(4, 4, &tb);
        let sparse = a.spspmm(&b).to_dense();
        let dense = a.to_dense().matmul(&b.to_dense());
        prop_assert!(sparse.max_abs_diff(&dense) < 1e-4);
    }

    #[test]
    fn autograd_sum_of_mul_matches_manual(
        a in small_tensor(2, 3),
        b in small_tensor(2, 3),
    ) {
        // d/dA Σ (A ⊙ B) = B.
        let mut tape = Tape::new();
        let va = tape.leaf(a.clone());
        let vb = tape.leaf(b.clone());
        let m = tape.mul(va, vb);
        let loss = tape.sum(m);
        tape.backward(loss);
        let ga = tape.grad(va).unwrap();
        prop_assert!(ga.max_abs_diff(&b) < 1e-5);
    }

    #[test]
    fn checkpoint_round_trip_is_lossless(
        w1 in small_tensor(2, 4),
        w2 in small_tensor(3, 1),
    ) {
        let mut store = ParamStore::new();
        store.register("w1", w1.clone());
        store.register("w2", w2.clone());
        let loaded = load_params(&save_params(&store)).unwrap();
        prop_assert_eq!(loaded.get(loaded.id("w1").unwrap()).as_slice(), w1.as_slice());
        prop_assert_eq!(loaded.get(loaded.id("w2").unwrap()).as_slice(), w2.as_slice());
    }

    #[test]
    fn gcn_normalization_bounds_spectrum(
        triplets in prop::collection::vec((0usize..6, 0usize..6, 1.0f32..1.0001), 1..15),
    ) {
        // Symmetrise first.
        let mut sym = Vec::new();
        for &(r, c, v) in &triplets {
            if r != c {
                sym.push((r, c, v));
                sym.push((c, r, v));
            }
        }
        prop_assume!(!sym.is_empty());
        let adj = CsrMatrix::from_coo(6, 6, &sym).gcn_normalized();
        // Rows of D^{-1/2}(A+I)D^{-1/2} sum to at most ~1 + ε when the
        // graph is regular-ish; in general all entries are in (0, 1].
        for r in 0..6 {
            for (_, v) in adj.row_entries(r) {
                prop_assert!(v > 0.0 && v <= 1.0 + 1e-5);
            }
        }
    }
}
