//! Kernel-backend parity properties: `Optimized` against the `Reference`
//! scalar oracle on hostile floats.
//!
//! The parity contract (see `kernels::optimized` and DESIGN.md):
//!
//! * `nt` (`A·Bᵀ`) and `tn` (`Aᵀ·B`) are **bitwise** identical across
//!   backends — NaN, ±0.0, subnormal and huge inputs included — because
//!   the optimized paths replicate the reference accumulation order
//!   element for element.
//! * `nn` (`A·B`) is allowed exactly two deviations: the optimized path
//!   does not skip `+0.0` multipliers (its sums are a superset of the
//!   reference terms), and accumulating into a nonzero `out` rounds once
//!   at the end instead of per term. On finite inputs with a fresh output
//!   that leaves a tolerance-bounded (in practice zero up to the sign of
//!   zero) difference; NaNs the reference produces must still propagate.
//! * the bounds hold under *nested* rayon parallelism too: outer
//!   `par_iter` tasks each running an internally-parallel GEMM must not
//!   corrupt one another's pack scratch
//!   (`nn_inside_outer_par_iter_matches_reference`).

use proptest::prelude::*;
use widen_tensor::{BackendKind, KernelBackend, Optimized, Reference, Tensor};

/// Adversarial finite floats: exact zeros of both signs, subnormals, huge
/// and tiny magnitudes, plus ordinary values.
fn hostile_float() -> impl Strategy<Value = f32> {
    (0usize..14, -3.0f32..3.0).prop_map(|(pick, ordinary)| match pick {
        0 => 0.0,
        1 => -0.0,
        2 => f32::MIN_POSITIVE / 2.0,  // subnormal
        3 => -f32::MIN_POSITIVE / 4.0, // subnormal
        4 => f32::MIN_POSITIVE,
        5 => 1.0e30,
        6 => -1.0e30,
        7 => 1.0e-30,
        8 => 1.0,
        9 => -1.0,
        _ => ordinary,
    })
}

/// [`hostile_float`] plus NaN — for the paths whose contract is bitwise
/// equality (NaN payloads flow through both backends identically) and for
/// the NaN-propagation property of `nn`.
fn hostile_float_with_nan() -> impl Strategy<Value = f32> {
    (0usize..16, hostile_float()).prop_map(|(pick, base)| if pick == 0 { f32::NAN } else { base })
}

fn tensor_of(
    rows: usize,
    cols: usize,
    elem: impl Strategy<Value = f32>,
) -> impl Strategy<Value = Tensor> {
    prop::collection::vec(elem, rows * cols)
        .prop_map(move |data| Tensor::from_vec(rows, cols, data))
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.as_slice().iter().map(|x| x.to_bits()).collect()
}

/// Per-element tolerance for the `nn` comparison: a small relative slack
/// against the magnitude sum of the contributing products (the largest
/// possible intermediate), plus an absolute floor for subnormal results.
fn nn_tolerance(a: &Tensor, b: &Tensor, i: usize, j: usize) -> f32 {
    let k = a.cols();
    let mut scale = 0.0f32;
    for p in 0..k {
        scale += (a.get(i, p) * b.get(p, j)).abs();
    }
    1e-5 * scale + 1e-30
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn nt_is_bitwise_identical_across_backends(
        a in tensor_of(7, 5, hostile_float_with_nan()),
        b in tensor_of(6, 5, hostile_float_with_nan()),
    ) {
        let reference = a.matmul_nt_with(&b, BackendKind::Reference);
        let optimized = a.matmul_nt_with(&b, BackendKind::Optimized);
        prop_assert_eq!(bits(&reference), bits(&optimized));
    }

    #[test]
    fn tn_is_bitwise_identical_across_backends(
        a in tensor_of(6, 4, hostile_float_with_nan()),
        b in tensor_of(6, 5, hostile_float_with_nan()),
    ) {
        let reference = a.matmul_tn_with(&b, BackendKind::Reference);
        let optimized = a.matmul_tn_with(&b, BackendKind::Optimized);
        prop_assert_eq!(bits(&reference), bits(&optimized));
    }

    #[test]
    fn dot_is_bitwise_identical_across_backends(
        a in prop::collection::vec(hostile_float_with_nan(), 37),
        b in prop::collection::vec(hostile_float_with_nan(), 37),
    ) {
        // 37 elements: two full 16-lane chunks plus a ragged tail.
        let r = Reference.dot(&a, &b);
        let o = Optimized.dot(&a, &b);
        prop_assert_eq!(r.to_bits(), o.to_bits());
    }

    #[test]
    fn nn_is_tolerance_bounded_on_finite_inputs(
        // 9 rows crosses the optimized backend's packing threshold (8), so
        // both the packed and the raw-B drivers are exercised; k = 5 keeps
        // it off the shape-specialised micro kernels.
        a in tensor_of(9, 5, hostile_float()),
        b in tensor_of(5, 17, hostile_float()),
    ) {
        let reference = a.matmul_with(&b, BackendKind::Reference);
        let optimized = a.matmul_with(&b, BackendKind::Optimized);
        for i in 0..reference.rows() {
            for j in 0..reference.cols() {
                let r = reference.get(i, j);
                let o = optimized.get(i, j);
                if r.is_nan() || o.is_nan() {
                    // Finite inputs can still overflow to ±inf and then
                    // cancel to NaN; both backends must agree when so.
                    prop_assert!(r.is_nan() && o.is_nan(),
                        "NaN disagreement at ({i},{j}): reference {r}, optimized {o}");
                } else if r.is_infinite() || o.is_infinite() {
                    prop_assert_eq!(r, o);
                } else {
                    let tol = nn_tolerance(&a, &b, i, j);
                    prop_assert!((r - o).abs() <= tol,
                        "({i},{j}): reference {r}, optimized {o}, tol {tol}");
                }
            }
        }
    }

    #[test]
    fn nn_paper_shape_k128_is_tolerance_bounded(
        a in tensor_of(12, 128, hostile_float()),
        b in tensor_of(128, 16, hostile_float()),
    ) {
        // d = 128 routes through the shape-specialised fast path for the
        // paper config; it must obey the same bound as the generic kernel.
        let reference = a.matmul_with(&b, BackendKind::Reference);
        let optimized = a.matmul_with(&b, BackendKind::Optimized);
        for i in 0..reference.rows() {
            for j in 0..reference.cols() {
                let r = reference.get(i, j);
                let o = optimized.get(i, j);
                if r.is_nan() || o.is_nan() {
                    prop_assert!(r.is_nan() && o.is_nan());
                } else if r.is_infinite() || o.is_infinite() {
                    prop_assert_eq!(r, o);
                } else {
                    let tol = nn_tolerance(&a, &b, i, j);
                    prop_assert!((r - o).abs() <= tol);
                }
            }
        }
    }

    #[test]
    fn nn_propagates_every_reference_nan(
        a in tensor_of(9, 6, hostile_float_with_nan()),
        b in tensor_of(6, 7, hostile_float_with_nan()),
    ) {
        // The optimized kernel's sums include a superset of the reference
        // terms (it drops the +0.0 skip), so wherever the reference sees a
        // NaN the optimized result must be NaN too. The converse is
        // deliberately NOT required: +0.0 · NaN terms the reference skips
        // may surface as NaN only on the optimized path.
        let reference = a.matmul_with(&b, BackendKind::Reference);
        let optimized = a.matmul_with(&b, BackendKind::Optimized);
        for i in 0..reference.rows() {
            for j in 0..reference.cols() {
                if reference.get(i, j).is_nan() {
                    prop_assert!(optimized.get(i, j).is_nan(),
                        "reference NaN at ({i},{j}) vanished on the optimized path");
                }
            }
        }
    }

    #[test]
    fn nn_inside_outer_par_iter_matches_reference(
        rounds in 1usize..3,
    ) {
        // Regression for a work-stealing hazard: an outer rayon par_iter
        // (mimicking trainer::train_batch / model::infer_rows) whose tasks
        // each run a large optimized matmul that parallelises internally
        // (work ≥ 64³, m > MR). A task stolen onto a pool thread mid-GEMM
        // must not corrupt another task's pack scratch — every concurrent
        // result must equal the single-threaded reference answer.
        use rayon::prelude::*;
        let grid = |rows: usize, cols: usize, f: fn(usize, usize) -> f32| {
            let data = (0..rows)
                .flat_map(|i| (0..cols).map(move |j| f(i, j)))
                .collect();
            Tensor::from_vec(rows, cols, data)
        };
        let a = grid(64, 128, |i, j| ((i * 131 + j * 17) % 97) as f32 * 0.01);
        let b = grid(128, 128, |i, j| ((i * 29 + j * 13) % 89) as f32 * 0.01);
        let reference = a.matmul_with(&b, BackendKind::Reference);
        // Tolerances depend only on the inputs; compute them once, not per
        // concurrent task.
        let tol: Vec<f32> = (0..reference.rows())
            .flat_map(|i| (0..reference.cols()).map(move |j| (i, j)))
            .map(|(i, j)| nn_tolerance(&a, &b, i, j))
            .collect();
        let tasks: Vec<usize> = (0..64).collect();
        for _round in 0..rounds {
            let failures: Vec<String> = tasks
                .par_iter()
                .filter_map(|&task| {
                    let c = a.matmul_with(&b, BackendKind::Optimized);
                    for i in 0..reference.rows() {
                        for j in 0..reference.cols() {
                            let r = reference.get(i, j);
                            let o = c.get(i, j);
                            let t = tol[i * reference.cols() + j];
                            // NaN-safe: a NaN difference must also report.
                            let d = (r - o).abs();
                            if d.is_nan() || d > t {
                                return Some(format!(
                                    "task {task} ({i},{j}): reference {r}, optimized {o}, tol {t}"
                                ));
                            }
                        }
                    }
                    None
                })
                .collect();
            prop_assert!(failures.is_empty(), "{}", failures.join("; "));
        }
    }

    #[test]
    fn nn_acc_into_nonzero_out_is_tolerance_bounded(
        a in tensor_of(10, 4, hostile_float()),
        b in tensor_of(4, 9, hostile_float()),
        seed in tensor_of(10, 9, hostile_float()),
    ) {
        // Accumulating into a nonzero buffer is where the backends'
        // rounding genuinely differs: reference rounds per term, optimized
        // rounds once when folding its register tile in.
        let mut reference = seed.clone();
        a.matmul_acc_with(&b, &mut reference, BackendKind::Reference);
        let mut optimized = seed.clone();
        a.matmul_acc_with(&b, &mut optimized, BackendKind::Optimized);
        for i in 0..reference.rows() {
            for j in 0..reference.cols() {
                let r = reference.get(i, j);
                let o = optimized.get(i, j);
                if r.is_nan() || o.is_nan() {
                    prop_assert!(r.is_nan() && o.is_nan());
                } else if r.is_infinite() || o.is_infinite() {
                    prop_assert_eq!(r, o);
                } else {
                    let tol = nn_tolerance(&a, &b, i, j)
                        + seed.get(i, j).abs() * 1e-5;
                    prop_assert!((r - o).abs() <= tol,
                        "({i},{j}): reference {r}, optimized {o}, tol {tol}");
                }
            }
        }
    }
}
