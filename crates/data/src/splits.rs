//! Train/validation/test splits for both evaluation protocols (§4.3).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use widen_graph::{HeteroGraph, NodeId};

/// Transductive split over the labelled nodes.
#[derive(Clone, Debug)]
pub struct Splits {
    /// Training node ids.
    pub train: Vec<NodeId>,
    /// Validation node ids.
    pub val: Vec<NodeId>,
    /// Test node ids.
    pub test: Vec<NodeId>,
}

impl Splits {
    /// Random split of a graph's labelled nodes by fractions
    /// (`train + val ≤ 1`; the remainder is test).
    ///
    /// # Panics
    /// Panics if fractions are out of range or no labelled nodes exist.
    pub fn random(graph: &HeteroGraph, train_frac: f64, val_frac: f64, seed: u64) -> Self {
        assert!(train_frac > 0.0 && val_frac >= 0.0 && train_frac + val_frac < 1.0);
        let mut labeled = graph.labeled_nodes();
        assert!(!labeled.is_empty(), "graph has no labelled nodes");
        let mut rng = StdRng::seed_from_u64(seed);
        labeled.shuffle(&mut rng);
        let n = labeled.len();
        let n_train = ((n as f64 * train_frac).round() as usize).max(1);
        let n_val = (n as f64 * val_frac).round() as usize;
        let train = labeled[..n_train].to_vec();
        let val = labeled[n_train..n_train + n_val].to_vec();
        let test = labeled[n_train + n_val..].to_vec();
        Self { train, val, test }
    }

    /// Total number of split nodes.
    pub fn len(&self) -> usize {
        self.train.len() + self.val.len() + self.test.len()
    }

    /// Whether all parts are empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Inductive split (§4.3): `test` nodes (20 % of the labelled set) are
/// **removed from the graph during training**; `train` nodes are the
/// remaining labelled nodes and supervise training on the reduced graph.
#[derive(Clone, Debug)]
pub struct InductiveSplit {
    /// Labelled nodes available during training.
    pub train: Vec<NodeId>,
    /// Held-out labelled nodes, unseen until inference.
    pub test: Vec<NodeId>,
}

impl InductiveSplit {
    /// Randomly holds out `test_frac` of the labelled nodes.
    ///
    /// # Panics
    /// Panics if the fraction leaves either side empty.
    pub fn random(graph: &HeteroGraph, test_frac: f64, seed: u64) -> Self {
        let mut labeled = graph.labeled_nodes();
        let mut rng = StdRng::seed_from_u64(seed);
        labeled.shuffle(&mut rng);
        let n_test = (labeled.len() as f64 * test_frac).round() as usize;
        assert!(
            n_test > 0 && n_test < labeled.len(),
            "degenerate inductive split"
        );
        let test = labeled[..n_test].to_vec();
        let train = labeled[n_test..].to_vec();
        Self { train, test }
    }
}

/// Deterministically subsets `nodes` to the given fraction — the Table 2
/// "25 % / 50 % / 75 % / 100 % of training labels" sweeps. A fraction of 1
/// returns the input unchanged; results are nested (25 % ⊂ 50 % ⊂ 75 %).
pub fn subset_fraction(nodes: &[NodeId], fraction: f64) -> Vec<NodeId> {
    assert!((0.0..=1.0).contains(&fraction), "fraction out of range");
    let keep = ((nodes.len() as f64 * fraction).round() as usize).max(1);
    nodes[..keep.min(nodes.len())].to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sbm::{EdgeTypeSpec, HeteroSbmConfig, NodeTypeSpec};

    fn graph() -> HeteroGraph {
        HeteroSbmConfig {
            node_types: vec![
                NodeTypeSpec::new("x", 100, true),
                NodeTypeSpec::new("y", 50, false),
            ],
            edge_types: vec![EdgeTypeSpec::new("xy", 0, 1, 2.0, 0.5)],
            num_classes: 2,
            feature_dim: 4,
            feature_signal_labeled: 1.0,
            feature_signal_unlabeled: 1.0,
            feature_noise: 0.5,
            hub_fraction: 0.0,
            informative_fraction: 1.0,
        }
        .generate(1)
    }

    #[test]
    fn random_split_partitions_labeled_nodes() {
        let g = graph();
        let s = Splits::random(&g, 0.2, 0.1, 42);
        assert_eq!(s.train.len(), 20);
        assert_eq!(s.val.len(), 10);
        assert_eq!(s.test.len(), 70);
        let mut all: Vec<_> = s
            .train
            .iter()
            .chain(&s.val)
            .chain(&s.test)
            .copied()
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 100, "parts are disjoint and cover");
        for v in all {
            assert!(g.label(v).is_some());
        }
    }

    #[test]
    fn splits_are_seed_deterministic() {
        let g = graph();
        let a = Splits::random(&g, 0.3, 0.1, 7);
        let b = Splits::random(&g, 0.3, 0.1, 7);
        assert_eq!(a.train, b.train);
        assert_eq!(a.test, b.test);
        let c = Splits::random(&g, 0.3, 0.1, 8);
        assert_ne!(a.train, c.train);
    }

    #[test]
    fn inductive_split_holds_out_requested_fraction() {
        let g = graph();
        let s = InductiveSplit::random(&g, 0.2, 5);
        assert_eq!(s.test.len(), 20);
        assert_eq!(s.train.len(), 80);
        // Disjoint.
        for t in &s.test {
            assert!(!s.train.contains(t));
        }
    }

    #[test]
    fn subset_fraction_is_nested_and_sized() {
        let nodes: Vec<u32> = (0..40).collect();
        let q25 = subset_fraction(&nodes, 0.25);
        let q50 = subset_fraction(&nodes, 0.5);
        let q100 = subset_fraction(&nodes, 1.0);
        assert_eq!(q25.len(), 10);
        assert_eq!(q50.len(), 20);
        assert_eq!(q100.len(), 40);
        assert_eq!(&q50[..10], &q25[..]);
    }

    #[test]
    fn subset_fraction_never_empty() {
        let nodes: Vec<u32> = (0..5).collect();
        assert_eq!(subset_fraction(&nodes, 0.01).len(), 1);
    }
}
