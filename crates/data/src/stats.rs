//! Table-1-style dataset statistics.

use crate::Dataset;

/// The statistics the paper reports per dataset (Table 1), collected from a
/// generated [`Dataset`].
#[derive(Clone, Debug)]
pub struct DatasetStats {
    /// Dataset name.
    pub name: String,
    /// `#Nodes`.
    pub nodes: usize,
    /// `#Node Types`.
    pub node_types: usize,
    /// `#Edges` (logical, undirected).
    pub edges: usize,
    /// `#Edge Types`.
    pub edge_types: usize,
    /// `#Features` (raw dimensionality d₀).
    pub features: usize,
    /// `#Class Labels`.
    pub class_labels: usize,
    /// Transductive `#Training/#Validation/#Test` node counts.
    pub transductive: (usize, usize, usize),
    /// Inductive `#Training/#Test` node counts.
    pub inductive: (usize, usize),
    /// Mean (directed) degree — not in Table 1 but load-bearing for the
    /// sparsity discussion in §1.
    pub mean_degree: f64,
}

impl DatasetStats {
    /// Collects statistics from a dataset.
    pub fn collect(dataset: &Dataset) -> Self {
        let g = &dataset.graph;
        Self {
            name: dataset.name.clone(),
            nodes: g.num_nodes(),
            node_types: g.num_node_types(),
            edges: g.num_edges(),
            edge_types: g.num_edge_types(),
            features: g.feature_dim(),
            class_labels: g.num_classes(),
            transductive: (
                dataset.transductive.train.len(),
                dataset.transductive.val.len(),
                dataset.transductive.test.len(),
            ),
            inductive: (dataset.inductive.train.len(), dataset.inductive.test.len()),
            mean_degree: g.mean_degree(),
        }
    }

    /// One formatted row block (matches the layout of Table 1).
    pub fn render(&self) -> String {
        format!(
            "{:<12} #Nodes {:>8}  #NodeTypes {:>2}  #Edges {:>9}  #EdgeTypes {:>2}  \
             #Features {:>5}  #Classes {:>2}\n\
             {:<12} transductive train/val/test = {}/{}/{}   inductive train/test = {}/{}   \
             mean degree = {:.2}",
            self.name,
            self.nodes,
            self.node_types,
            self.edges,
            self.edge_types,
            self.features,
            self.class_labels,
            "",
            self.transductive.0,
            self.transductive.1,
            self.transductive.2,
            self.inductive.0,
            self.inductive.1,
            self.mean_degree,
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::{acm_like, Scale};

    #[test]
    fn stats_are_consistent_with_graph() {
        let d = acm_like(Scale::Smoke, 1);
        let s = d.stats();
        assert_eq!(s.nodes, d.graph.num_nodes());
        assert_eq!(s.edges, d.graph.num_edges());
        assert_eq!(s.node_types, 3);
        assert_eq!(
            s.transductive.0 + s.transductive.1 + s.transductive.2,
            d.graph.labeled_nodes().len()
        );
        let rendered = s.render();
        assert!(rendered.contains("acm-like"));
        assert!(rendered.contains("#Nodes"));
    }
}
