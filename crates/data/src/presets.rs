//! The three dataset presets mirroring Table 1's schemas.

use crate::sbm::{EdgeTypeSpec, HeteroSbmConfig, NodeTypeSpec};
use crate::splits::{InductiveSplit, Splits};
use crate::Dataset;

/// Generation scale.
///
/// `Smoke` keeps unit/integration tests fast; `Table` is the committed scale
/// for regenerating the paper's tables (Yelp is scaled down from 2.18 M to
/// ≈ 60 k nodes — shape-preserving for every reported comparison, see
/// DESIGN.md).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// A few hundred nodes; for tests.
    Smoke,
    /// Tens of thousands of nodes; for experiment harnesses.
    Table,
}

impl Scale {
    fn factor(self) -> f64 {
        match self {
            Scale::Smoke => 1.0,
            Scale::Table => 10.0,
        }
    }
}

fn scaled(scale: Scale, smoke: usize) -> usize {
    ((smoke as f64 * scale.factor()).round() as usize).max(2)
}

/// ACM-like academic graph: `paper` (labelled, 3 classes: database /
/// wireless communication / data mining), `author`, `subject`; edge types
/// `paper-author`, `paper-subject`. Transductive split ≈ 20 % / 10 % / 70 %
/// matching the proportions of Table 1's ACM row.
pub fn acm_like(scale: Scale, seed: u64) -> Dataset {
    let config = HeteroSbmConfig {
        node_types: vec![
            NodeTypeSpec::new("paper", scaled(scale, 300), true),
            NodeTypeSpec::new("author", scaled(scale, 560), false),
            NodeTypeSpec::new("subject", scaled(scale, 12), false),
        ],
        edge_types: vec![
            EdgeTypeSpec::new("paper-author", 1, 0, 3.5, 0.34),
            EdgeTypeSpec::new("paper-subject", 0, 2, 1.8, 0.82),
        ],
        num_classes: 3,
        feature_dim: 96,
        feature_signal_labeled: 0.45,
        feature_signal_unlabeled: 0.7,
        feature_noise: 1.0,
        hub_fraction: 0.05,
        informative_fraction: 0.7,
    };
    build("acm-like", config, seed)
}

/// DBLP-like academic graph: `author` (labelled, 4 research areas), `paper`,
/// `conference`, `term`; edge types `paper-author`, `paper-conference`,
/// `paper-term`.
pub fn dblp_like(scale: Scale, seed: u64) -> Dataset {
    let config = HeteroSbmConfig {
        node_types: vec![
            NodeTypeSpec::new("author", scaled(scale, 400), true),
            NodeTypeSpec::new("paper", scaled(scale, 1200), false),
            NodeTypeSpec::new("conference", scaled(scale, 2), false),
            NodeTypeSpec::new("term", scaled(scale, 220), false),
        ],
        edge_types: vec![
            EdgeTypeSpec::new("paper-author", 1, 0, 2.6, 0.70),
            EdgeTypeSpec::new("paper-conference", 1, 2, 1.0, 0.85),
            EdgeTypeSpec::new("paper-term", 1, 3, 5.0, 0.25),
        ],
        num_classes: 4,
        feature_dim: 64,
        feature_signal_labeled: 0.45,
        feature_signal_unlabeled: 0.7,
        feature_noise: 1.0,
        hub_fraction: 0.05,
        informative_fraction: 0.7,
    };
    build("dblp-like", config, seed)
}

/// Yelp-like review graph: `business` (labelled, service quality low /
/// medium / high), `user`, `category`, `attribute`; edge types
/// `user-business`, `user-user`, `business-category`, `business-attribute`.
/// User nodes are deliberately sparse reviewers (mean degree < 5, §1's
/// motivation for deep neighbours).
pub fn yelp_like(scale: Scale, seed: u64) -> Dataset {
    let config = HeteroSbmConfig {
        node_types: vec![
            NodeTypeSpec::new("business", scaled(scale, 600), true),
            NodeTypeSpec::new("user", scaled(scale, 2000), false),
            NodeTypeSpec::new("category", scaled(scale, 30), false),
            NodeTypeSpec::new("attribute", scaled(scale, 20), false),
        ],
        edge_types: vec![
            EdgeTypeSpec::new("user-business", 1, 0, 3.6, 0.60),
            EdgeTypeSpec::new("user-user", 1, 1, 3.0, 0.34),
            EdgeTypeSpec::new("business-category", 0, 2, 2.0, 0.75),
            EdgeTypeSpec::new("business-attribute", 0, 3, 2.6, 0.52),
        ],
        num_classes: 3,
        feature_dim: 48,
        feature_signal_labeled: 0.45,
        feature_signal_unlabeled: 0.7,
        feature_noise: 1.0,
        hub_fraction: 0.08,
        informative_fraction: 0.7,
    };
    build("yelp-like", config, seed)
}

fn build(name: &str, config: HeteroSbmConfig, seed: u64) -> Dataset {
    let graph = config.generate(seed);
    let transductive = Splits::random(&graph, 0.2, 0.1, seed ^ 0xA5A5_5A5A);
    let inductive = InductiveSplit::random(&graph, 0.2, seed ^ 0x0F0F_F0F0);
    Dataset {
        name: name.to_string(),
        graph,
        transductive,
        inductive,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acm_preset_schema() {
        let d = acm_like(Scale::Smoke, 1);
        assert_eq!(d.graph.num_node_types(), 3);
        assert_eq!(d.graph.num_edge_types(), 2);
        assert_eq!(d.graph.num_classes(), 3);
        assert_eq!(d.graph.labeled_nodes().len(), 300);
        d.graph.validate();
    }

    #[test]
    fn dblp_preset_schema() {
        let d = dblp_like(Scale::Smoke, 1);
        assert_eq!(d.graph.num_node_types(), 4);
        assert_eq!(d.graph.num_edge_types(), 3);
        assert_eq!(d.graph.num_classes(), 4);
        // Authors are labelled, not papers.
        let first_author = d.graph.labeled_nodes()[0];
        assert_eq!(
            d.graph.node_type_name(d.graph.node_type(first_author)),
            "author"
        );
    }

    #[test]
    fn yelp_preset_schema() {
        let d = yelp_like(Scale::Smoke, 1);
        assert_eq!(d.graph.num_node_types(), 4);
        assert_eq!(d.graph.num_edge_types(), 4);
        assert_eq!(d.graph.num_classes(), 3);
        // Users are sparse reviewers (§1's motivation): the mean number of
        // *user-business* edges per user stays below 5. (Total degree also
        // counts user-user friendships.)
        let users = d.graph.nodes_of_type(widen_graph::NodeTypeId(1));
        let ub_type = 0u16; // "user-business" is the first declared edge type
        let mean: f64 = users
            .iter()
            .map(|&u| {
                d.graph
                    .edge_types_of(u)
                    .iter()
                    .filter(|&&t| t == ub_type)
                    .count() as f64
            })
            .sum::<f64>()
            / users.len() as f64;
        assert!(mean < 5.0, "user mean review degree {mean}");
    }

    #[test]
    fn table_scale_is_larger() {
        let s = acm_like(Scale::Smoke, 2);
        let t = acm_like(Scale::Table, 2);
        assert!(t.graph.num_nodes() > 5 * s.graph.num_nodes());
    }

    #[test]
    fn splits_cover_labeled_set() {
        let d = acm_like(Scale::Smoke, 3);
        let n_labeled = d.graph.labeled_nodes().len();
        assert_eq!(d.transductive.len(), n_labeled);
        assert_eq!(d.inductive.train.len() + d.inductive.test.len(), n_labeled);
    }

    #[test]
    fn presets_are_deterministic() {
        let a = yelp_like(Scale::Smoke, 9);
        let b = yelp_like(Scale::Smoke, 9);
        assert_eq!(a.transductive.train, b.transductive.train);
        assert_eq!(a.graph.num_directed_edges(), b.graph.num_directed_edges());
    }
}
