//! Node-proportion subsampling — the workload behind Figure 5's scalability
//! sweep (training time vs. {0.2, 0.4, 0.6, 0.8, 1.0} of the graph).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use widen_graph::{HeteroGraph, InducedSubgraph};

/// Returns the subgraph induced by a random `ratio` fraction of nodes,
/// sampled uniformly **within each node type** so the heterogeneous schema
/// survives subsampling (a plain uniform sample can wipe out small types
/// like `conference`).
///
/// # Panics
/// Panics unless `0 < ratio ≤ 1`.
pub fn subsample_nodes(graph: &HeteroGraph, ratio: f64, seed: u64) -> InducedSubgraph {
    assert!(ratio > 0.0 && ratio <= 1.0, "ratio must be in (0, 1]");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut keep = Vec::new();
    for t in 0..graph.num_node_types() {
        let mut nodes = graph.nodes_of_type(widen_graph::NodeTypeId(t as u16));
        nodes.shuffle(&mut rng);
        let take = ((nodes.len() as f64 * ratio).round() as usize)
            .max(1)
            .min(nodes.len());
        keep.extend_from_slice(&nodes[..take]);
    }
    keep.sort_unstable();
    graph.induced_subgraph(&keep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{yelp_like, Scale};

    #[test]
    fn subsample_keeps_every_type() {
        let d = yelp_like(Scale::Smoke, 1);
        let sub = subsample_nodes(&d.graph, 0.2, 42).graph;
        let counts = sub.node_type_counts();
        assert_eq!(counts.len(), 4);
        for c in counts {
            assert!(c >= 1);
        }
    }

    #[test]
    fn subsample_size_scales_with_ratio() {
        let d = yelp_like(Scale::Smoke, 1);
        let s02 = subsample_nodes(&d.graph, 0.2, 1).graph.num_nodes() as f64;
        let s08 = subsample_nodes(&d.graph, 0.8, 1).graph.num_nodes() as f64;
        let full = d.graph.num_nodes() as f64;
        assert!((s02 / full - 0.2).abs() < 0.05);
        assert!((s08 / full - 0.8).abs() < 0.05);
    }

    #[test]
    fn full_ratio_is_identity_sized() {
        let d = yelp_like(Scale::Smoke, 2);
        let sub = subsample_nodes(&d.graph, 1.0, 3).graph;
        assert_eq!(sub.num_nodes(), d.graph.num_nodes());
        assert_eq!(sub.num_edges(), d.graph.num_edges());
    }

    #[test]
    fn labels_survive_subsampling() {
        let d = yelp_like(Scale::Smoke, 3);
        let sub = subsample_nodes(&d.graph, 0.5, 4).graph;
        assert!(!sub.labeled_nodes().is_empty());
    }
}
