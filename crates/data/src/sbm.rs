//! Generic heterogeneous stochastic-block-model generator.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, StandardNormal};
use widen_graph::{GraphBuilder, HeteroGraph};

/// Specification of one node type.
#[derive(Clone, Debug)]
pub struct NodeTypeSpec {
    /// Type name (e.g. `paper`).
    pub name: String,
    /// Number of nodes of this type.
    pub count: usize,
    /// Whether this type carries the classification labels.
    pub labeled: bool,
}

impl NodeTypeSpec {
    /// Convenience constructor.
    pub fn new(name: &str, count: usize, labeled: bool) -> Self {
        Self {
            name: name.to_string(),
            count,
            labeled,
        }
    }
}

/// Specification of one edge type between two node types.
#[derive(Clone, Debug)]
pub struct EdgeTypeSpec {
    /// Type name (e.g. `paper-author`).
    pub name: String,
    /// Source node type (index into [`HeteroSbmConfig::node_types`]).
    pub src: usize,
    /// Destination node type (may equal `src`, e.g. `user-user`).
    pub dst: usize,
    /// Average number of edges generated per source node.
    pub mean_degree: f32,
    /// Probability that an edge endpoint is drawn from the *same latent
    /// class* as the source node (the block-model homophily knob; `1/C`
    /// makes the edge type uninformative).
    pub homophily: f32,
}

impl EdgeTypeSpec {
    /// Convenience constructor.
    pub fn new(name: &str, src: usize, dst: usize, mean_degree: f32, homophily: f32) -> Self {
        Self {
            name: name.to_string(),
            src,
            dst,
            mean_degree,
            homophily,
        }
    }
}

/// Full generator configuration.
#[derive(Clone, Debug)]
pub struct HeteroSbmConfig {
    /// Node types; exactly one should be labelled.
    pub node_types: Vec<NodeTypeSpec>,
    /// Edge types.
    pub edge_types: Vec<EdgeTypeSpec>,
    /// Number of classes planted on the labelled type.
    pub num_classes: usize,
    /// Raw feature dimensionality `d₀`.
    pub feature_dim: usize,
    /// Scale of the class prototype inside labelled nodes' features.
    /// Kept modest so features alone do not saturate the task.
    pub feature_signal_labeled: f32,
    /// Prototype scale for unlabelled node types (usually larger — e.g.
    /// subject/conference/category nodes are strongly class-indicative,
    /// which is exactly the signal meta-path/heterogeneous models exploit).
    pub feature_signal_unlabeled: f32,
    /// Standard deviation of the additive Gaussian feature noise.
    pub feature_noise: f32,
    /// Fraction of hub nodes whose degree is tripled (degree skew).
    pub hub_fraction: f32,
    /// Fraction of nodes whose features actually carry the class prototype;
    /// the rest are pure noise. Real bag-of-words features are exactly this
    /// mixture (some abstracts/reviews are topical, many are generic), and
    /// it is what makes *selective* aggregation (attention over message
    /// packs) outperform uniform mean/propagation aggregation.
    pub informative_fraction: f32,
}

impl HeteroSbmConfig {
    /// Generates a graph from this configuration with the given seed.
    ///
    /// # Panics
    /// Panics on inconsistent specs (no labelled type, bad indices, …).
    pub fn generate(&self, seed: u64) -> HeteroGraph {
        assert!(self.num_classes >= 2, "need at least two classes");
        assert!(
            self.node_types.iter().filter(|t| t.labeled).count() == 1,
            "exactly one labelled node type expected"
        );
        for e in &self.edge_types {
            assert!(e.src < self.node_types.len() && e.dst < self.node_types.len());
            assert!((0.0..=1.0).contains(&e.homophily));
        }

        let mut rng = StdRng::seed_from_u64(seed);
        let type_names: Vec<&str> = self.node_types.iter().map(|t| t.name.as_str()).collect();
        let edge_names: Vec<&str> = self.edge_types.iter().map(|e| e.name.as_str()).collect();
        let mut builder =
            GraphBuilder::new(&type_names, &edge_names).with_classes(self.num_classes);

        // Class prototypes: random ±1 patterns.
        let prototypes: Vec<Vec<f32>> = (0..self.num_classes)
            .map(|_| {
                (0..self.feature_dim)
                    .map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 })
                    .collect()
            })
            .collect();

        // Assign latent classes and create nodes.
        // node ids are contiguous per type, in spec order.
        let mut latent: Vec<u16> = Vec::new();
        let mut type_offsets = Vec::with_capacity(self.node_types.len());
        for spec in &self.node_types {
            type_offsets.push(latent.len() as u32);
            let tid = builder.node_type(&spec.name).expect("declared above");
            for _ in 0..spec.count {
                let class = rng.gen_range(0..self.num_classes) as u16;
                latent.push(class);
                let base_signal = if spec.labeled {
                    self.feature_signal_labeled
                } else {
                    self.feature_signal_unlabeled
                };
                let informative = rng.gen::<f32>() < self.informative_fraction;
                let signal = if informative { base_signal } else { 0.0 };
                let features: Vec<f32> = prototypes[class as usize]
                    .iter()
                    .map(|&p| {
                        let z: f32 = StandardNormal.sample(&mut rng);
                        p * signal + z * self.feature_noise
                    })
                    .collect();
                let label = spec.labeled.then_some(class);
                builder.add_node(tid, features, label);
            }
        }

        // Per (type, class) node index for homophilous endpoint draws.
        let mut by_type_class: Vec<Vec<Vec<u32>>> =
            vec![vec![Vec::new(); self.num_classes]; self.node_types.len()];
        let mut by_type: Vec<Vec<u32>> = vec![Vec::new(); self.node_types.len()];
        for (ti, spec) in self.node_types.iter().enumerate() {
            let offset = type_offsets[ti];
            for k in 0..spec.count {
                let id = offset + k as u32;
                by_type_class[ti][latent[id as usize] as usize].push(id);
                by_type[ti].push(id);
            }
        }

        // Wire edges.
        for (ei, espec) in self.edge_types.iter().enumerate() {
            let etid = builder.edge_type(edge_names[ei]).expect("declared above");
            let src_offset = type_offsets[espec.src];
            for k in 0..self.node_types[espec.src].count {
                let src = src_offset + k as u32;
                let mut degree = sample_degree(espec.mean_degree, &mut rng);
                if rng.gen::<f32>() < self.hub_fraction {
                    degree *= 3;
                }
                for _ in 0..degree {
                    let same_class = rng.gen::<f32>() < espec.homophily;
                    let pool: &[u32] = if same_class {
                        &by_type_class[espec.dst][latent[src as usize] as usize]
                    } else {
                        &by_type[espec.dst]
                    };
                    if pool.is_empty() {
                        continue;
                    }
                    let dst = pool[rng.gen_range(0..pool.len())];
                    if dst != src {
                        builder.add_edge(src, dst, etid);
                    }
                }
            }
        }

        builder.build()
    }
}

/// Integer degree with the configured mean: `⌊mean⌋ + Bernoulli(frac)`,
/// at least 1.
fn sample_degree<R: Rng + ?Sized>(mean: f32, rng: &mut R) -> usize {
    let base = mean.floor() as usize;
    let frac = mean - mean.floor();
    let extra = usize::from(rng.gen::<f32>() < frac);
    (base + extra).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> HeteroSbmConfig {
        HeteroSbmConfig {
            node_types: vec![
                NodeTypeSpec::new("paper", 120, true),
                NodeTypeSpec::new("author", 200, false),
                NodeTypeSpec::new("subject", 12, false),
            ],
            edge_types: vec![
                EdgeTypeSpec::new("paper-author", 1, 0, 2.0, 0.8),
                EdgeTypeSpec::new("paper-subject", 0, 2, 2.0, 0.9),
            ],
            num_classes: 3,
            feature_dim: 16,
            feature_signal_labeled: 0.4,
            feature_signal_unlabeled: 1.0,
            feature_noise: 1.0,
            hub_fraction: 0.05,
            informative_fraction: 1.0,
        }
    }

    #[test]
    fn generates_requested_schema() {
        let g = tiny_config().generate(1);
        assert_eq!(g.num_nodes(), 332);
        assert_eq!(g.num_node_types(), 3);
        assert_eq!(g.num_edge_types(), 2);
        assert_eq!(g.num_classes(), 3);
        assert_eq!(g.feature_dim(), 16);
        assert_eq!(g.node_type_counts(), vec![120, 200, 12]);
        g.validate();
    }

    #[test]
    fn only_labeled_type_has_labels() {
        let g = tiny_config().generate(2);
        for v in 0..g.num_nodes() as u32 {
            let has_label = g.label(v).is_some();
            let is_paper = g.node_type(v).0 == 0;
            assert_eq!(has_label, is_paper);
        }
    }

    #[test]
    fn generation_is_seed_deterministic() {
        let a = tiny_config().generate(7);
        let b = tiny_config().generate(7);
        assert_eq!(a.num_directed_edges(), b.num_directed_edges());
        assert_eq!(a.labeled_nodes(), b.labeled_nodes());
        assert!(a.features().max_abs_diff(b.features()) == 0.0);
    }

    #[test]
    fn different_seeds_differ() {
        let a = tiny_config().generate(7);
        let b = tiny_config().generate(8);
        assert!(a.features().max_abs_diff(b.features()) > 0.0);
    }

    #[test]
    fn homophily_wires_same_class_subjects() {
        // With homophily 0.9 on paper-subject, a paper's subject neighbours
        // should predominantly share its class... measured via labels.
        let g = tiny_config().generate(3);
        // Count same-class subject links by re-deriving class of subjects is
        // not possible from the graph alone (subjects unlabelled); instead
        // check that papers of the same class share subjects far more often
        // than chance: build subject → class histogram.
        let mut subject_class_counts = vec![[0usize; 3]; g.num_nodes()];
        for v in g.labeled_nodes() {
            let class = g.label(v).unwrap() as usize;
            let types = g.edge_types_of(v);
            for (k, &u) in g.neighbors(v).iter().enumerate() {
                if types[k] == 1 {
                    subject_class_counts[u as usize][class] += 1;
                }
            }
        }
        // Most subjects should have a clearly dominant class.
        let mut dominant = 0usize;
        let mut total = 0usize;
        for counts in subject_class_counts
            .iter()
            .filter(|c| c.iter().sum::<usize>() >= 3)
        {
            total += 1;
            let sum: usize = counts.iter().sum();
            let max = *counts.iter().max().unwrap();
            if max * 2 > sum {
                dominant += 1;
            }
        }
        assert!(total > 0);
        assert!(
            dominant as f64 / total as f64 > 0.7,
            "expected most subjects to be class-dominant: {dominant}/{total}"
        );
    }

    #[test]
    fn mean_degree_roughly_matches_spec() {
        let mut cfg = tiny_config();
        cfg.hub_fraction = 0.0;
        let g = cfg.generate(4);
        // paper-subject contributes ~2 per paper, paper-author ~2 per author.
        // Directed edge count ≈ 2*(120*2 + 200*2) = 1280 (minus dedup losses).
        let e = g.num_directed_edges() as f64;
        assert!(e > 800.0 && e < 1500.0, "directed edges = {e}");
    }

    #[test]
    fn informative_fraction_zero_erases_feature_signal() {
        let mut cfg = tiny_config();
        cfg.informative_fraction = 0.0;
        cfg.feature_noise = 0.0; // isolate the prototype term
        let g = cfg.generate(5);
        // No informative nodes + no noise ⇒ all-zero features.
        assert_eq!(g.features().frobenius_norm(), 0.0);
    }

    #[test]
    fn informative_fraction_one_gives_every_node_signal() {
        let mut cfg = tiny_config();
        cfg.informative_fraction = 1.0;
        cfg.feature_noise = 0.0;
        cfg.feature_signal_labeled = 1.0;
        cfg.feature_signal_unlabeled = 1.0;
        let g = cfg.generate(6);
        // Prototypes are ±1 patterns: every entry must be unit magnitude.
        for v in 0..g.num_nodes() as u32 {
            assert!(g.feature_row(v).iter().all(|&x| x.abs() == 1.0));
        }
    }
}
