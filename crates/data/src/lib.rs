//! # widen-data
//!
//! Synthetic heterogeneous graph datasets standing in for the paper's ACM,
//! DBLP and Yelp dumps (which are not redistributable / reproducible here —
//! see DESIGN.md's substitution table).
//!
//! The generators are schema-faithful: identical node/edge type inventories,
//! labelled node type, class counts and comparable degree structure. Class
//! signal is planted both in **typed connectivity** (stochastic-block-model
//! wiring through shared subjects / conferences / categories) and in
//! **node features** (class-conditioned prototypes + Gaussian noise, with a
//! weaker signal on the labelled type so that models must exploit the graph
//! to reach top accuracy — mirroring why heterogeneous GNNs win in the
//! paper's Table 2).
//!
//! Entry points: [`acm_like`], [`dblp_like`], [`yelp_like`] at a chosen
//! [`Scale`], each returning a [`Dataset`] with transductive and inductive
//! splits per the paper's §4.3 protocol.

#![deny(missing_docs)]
#![warn(clippy::all)]

mod presets;
mod sbm;
mod splits;
mod stats;
mod subsample;

pub use presets::{acm_like, dblp_like, yelp_like, Scale};
pub use sbm::{EdgeTypeSpec, HeteroSbmConfig, NodeTypeSpec};
pub use splits::{subset_fraction, InductiveSplit, Splits};
pub use stats::DatasetStats;
pub use subsample::subsample_nodes;

use widen_graph::HeteroGraph;

/// A generated dataset: the graph plus its evaluation splits.
pub struct Dataset {
    /// Human-readable dataset name (`acm-like`, `dblp-like`, `yelp-like`).
    pub name: String,
    /// The heterogeneous graph.
    pub graph: HeteroGraph,
    /// Transductive train/validation/test node ids (all labelled).
    pub transductive: Splits,
    /// Inductive split: held-out nodes are removed from the training graph.
    pub inductive: InductiveSplit,
}

impl Dataset {
    /// Table-1-style statistics of this dataset.
    pub fn stats(&self) -> DatasetStats {
        DatasetStats::collect(self)
    }
}
