//! Hierarchical span tracing.
//!
//! Where [`crate::metrics`] answers "how much, in aggregate", this module
//! answers *where one particular slow request or epoch spent its time*: a
//! [`Tracer`] hands out RAII [`Span`] guards that record wall-clock
//! `(start, duration)` intervals with parent links, grouped under a
//! [`TraceId`] (one trace = one request, one epoch, one run — whatever the
//! instrumented layer decides).
//!
//! Design constraints, in order:
//!
//! 1. **Zero cost when disabled.** A disabled tracer returns inert guards
//!    without reading the clock, touching thread-locals, or allocating —
//!    one relaxed atomic load and a branch, so instrumentation can stay in
//!    hot paths permanently.
//! 2. **Cheap when enabled.** Finished spans are pushed into one of a
//!    fixed set of mutex shards selected by thread id, so concurrent
//!    recorders (rayon chunks, batcher workers) rarely contend.
//! 3. **No wall-clock reads for identity.** Trace and span ids come from a
//!    seeded SplitMix64 sequence over an atomic counter — deterministic
//!    under a fixed seed and free of `Date::now`-style syscalls.
//!
//! Span names follow the `layer.component.op` scheme (DESIGN.md):
//! `core.trainer.forward`, `serve.batcher.queue_wait`, …
//!
//! Two exporters ship with the tracer: [`export_jsonl`] (one span per
//! line, the `--metrics-out` family) and [`chrome_trace_json`] — the
//! `trace_event` "complete event" format that `chrome://tracing` and
//! [Perfetto](https://ui.perfetto.dev) open directly.

use std::cell::RefCell;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::json;
use crate::sink::Event;

/// Identifies one trace (a request, an epoch, a run).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct TraceId(pub u64);

/// Identifies one span within a trace.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct SpanId(pub u64);

/// One finished span: a named `[start, start+dur)` interval on a thread,
/// with a parent link for tree reconstruction.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanRecord {
    /// The trace this span belongs to.
    pub trace: TraceId,
    /// This span's id.
    pub id: SpanId,
    /// Parent span, `None` for a trace root.
    pub parent: Option<SpanId>,
    /// `layer.component.op` name.
    pub name: String,
    /// Start, in nanoseconds since the tracer's epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Recording thread (stable per-thread token, not an OS tid).
    pub tid: u64,
}

impl SpanRecord {
    /// End of the span in epoch-relative nanoseconds.
    pub fn end_ns(&self) -> u64 {
        self.start_ns.saturating_add(self.dur_ns)
    }
}

/// SplitMix64 — the id mixer. Full-period, so ids from a counter never
/// collide under one seed.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

const SHARDS: usize = 8;

struct Inner {
    enabled: AtomicBool,
    epoch: Instant,
    seed: u64,
    next: AtomicU64,
    shards: [Mutex<Vec<SpanRecord>>; SHARDS],
}

thread_local! {
    /// Per-thread span context: `(tracer tag, trace, span)` entries pushed
    /// by live guards. Tagging by tracer keeps two tracers on one thread
    /// from adopting each other's spans as parents.
    static CONTEXT: RefCell<Vec<(usize, TraceId, SpanId)>> = const { RefCell::new(Vec::new()) };

    /// Stable per-thread token for `SpanRecord::tid` / shard selection.
    static THREAD_TOKEN: u64 = {
        static NEXT_THREAD: AtomicU64 = AtomicU64::new(1);
        NEXT_THREAD.fetch_add(1, Ordering::Relaxed)
    };
}

/// A clonable handle to one span store. Clones share the same records,
/// id sequence, and enabled flag.
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<Inner>,
}

impl Tracer {
    /// An **enabled** tracer whose trace/span ids derive from `seed`.
    pub fn new(seed: u64) -> Self {
        Self::with_enabled(seed, true)
    }

    /// A tracer that starts disabled; every span call is a no-op until
    /// [`Tracer::set_enabled`] flips it on.
    pub fn disabled(seed: u64) -> Self {
        Self::with_enabled(seed, false)
    }

    fn with_enabled(seed: u64, enabled: bool) -> Self {
        Self {
            inner: Arc::new(Inner {
                enabled: AtomicBool::new(enabled),
                epoch: Instant::now(),
                seed,
                next: AtomicU64::new(0),
                shards: std::array::from_fn(|_| Mutex::new(Vec::new())),
            }),
        }
    }

    /// Turns recording on or off. Spans already started finish normally.
    pub fn set_enabled(&self, enabled: bool) {
        self.inner.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether spans are currently recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    fn tag(&self) -> usize {
        Arc::as_ptr(&self.inner) as usize
    }

    fn fresh_id(&self) -> u64 {
        let n = self.inner.next.fetch_add(1, Ordering::Relaxed);
        splitmix64(self.inner.seed ^ splitmix64(n))
    }

    /// Allocates a fresh trace id (even while disabled, so wire-level
    /// trace propagation can be negotiated before recording starts).
    pub fn start_trace(&self) -> TraceId {
        TraceId(self.fresh_id())
    }

    /// Nanoseconds since this tracer's epoch — the timebase every
    /// [`SpanRecord`] uses. Reads the clock; call only on traced paths.
    pub fn now_ns(&self) -> u64 {
        u64::try_from(self.inner.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Opens a span under the current thread's innermost live span of this
    /// tracer (same trace, that span as parent). With no surrounding span,
    /// a fresh trace is started with this span as its root.
    #[inline]
    pub fn span(&self, name: &'static str) -> Span {
        if !self.is_enabled() {
            return Span { active: None };
        }
        let (trace, parent) = CONTEXT.with(|c| {
            c.borrow()
                .iter()
                .rev()
                .find(|(tag, _, _)| *tag == self.tag())
                .map_or((None, None), |&(_, t, s)| (Some(t), Some(s)))
        });
        let trace = trace.unwrap_or_else(|| self.start_trace());
        self.begin(trace, parent, name)
    }

    /// Opens a root span of an existing trace (no parent).
    #[inline]
    pub fn root_span(&self, trace: TraceId, name: &'static str) -> Span {
        if !self.is_enabled() {
            return Span { active: None };
        }
        self.begin(trace, None, name)
    }

    /// Opens a span under an explicit parent — the cross-thread form used
    /// where thread-local nesting cannot see the parent (rayon chunks,
    /// batcher workers).
    #[inline]
    pub fn child_span(&self, trace: TraceId, parent: SpanId, name: &'static str) -> Span {
        if !self.is_enabled() {
            return Span { active: None };
        }
        self.begin(trace, Some(parent), name)
    }

    fn begin(&self, trace: TraceId, parent: Option<SpanId>, name: &'static str) -> Span {
        let id = SpanId(self.fresh_id());
        CONTEXT.with(|c| c.borrow_mut().push((self.tag(), trace, id)));
        Span {
            active: Some(ActiveSpan {
                tracer: self.clone(),
                trace,
                id,
                parent,
                name,
                start: Instant::now(),
            }),
        }
    }

    /// Records an externally measured interval as a complete span — for
    /// durations captured with plain [`Instant`]s on paths where an RAII
    /// guard cannot live (e.g. queue wait measured between threads).
    pub fn record_complete(
        &self,
        trace: TraceId,
        parent: Option<SpanId>,
        name: &str,
        start_ns: u64,
        dur_ns: u64,
    ) -> SpanId {
        let id = SpanId(self.fresh_id());
        if self.is_enabled() {
            self.push(SpanRecord {
                trace,
                id,
                parent,
                name: name.to_string(),
                start_ns,
                dur_ns,
                tid: THREAD_TOKEN.with(|t| *t),
            });
        }
        id
    }

    fn push(&self, record: SpanRecord) {
        let shard = (record.tid as usize) % SHARDS;
        self.inner.shards[shard]
            .lock()
            .expect("trace shard poisoned")
            .push(record);
    }

    /// Removes and returns every recorded span, ordered by start time.
    pub fn drain(&self) -> Vec<SpanRecord> {
        let mut all = Vec::new();
        for shard in &self.inner.shards {
            all.append(&mut shard.lock().expect("trace shard poisoned"));
        }
        all.sort_by_key(|r| (r.start_ns, r.id.0));
        all
    }

    /// Copies every recorded span (ordered by start time) without
    /// removing them.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        let mut all = Vec::new();
        for shard in &self.inner.shards {
            all.extend(shard.lock().expect("trace shard poisoned").iter().cloned());
        }
        all.sort_by_key(|r| (r.start_ns, r.id.0));
        all
    }
}

struct ActiveSpan {
    tracer: Tracer,
    trace: TraceId,
    id: SpanId,
    parent: Option<SpanId>,
    name: &'static str,
    start: Instant,
}

/// RAII span guard: records a [`SpanRecord`] when dropped. Obtained from
/// [`Tracer::span`] and friends; inert (free) when the tracer is disabled.
pub struct Span {
    active: Option<ActiveSpan>,
}

impl Span {
    /// The span's id, if it is live (recording).
    pub fn id(&self) -> Option<SpanId> {
        self.active.as_ref().map(|a| a.id)
    }

    /// The trace the span belongs to, if it is live.
    pub fn trace(&self) -> Option<TraceId> {
        self.active.as_ref().map(|a| a.trace)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else {
            return;
        };
        let dur = active.start.elapsed();
        let end_ns = active.tracer.now_ns();
        let dur_ns = u64::try_from(dur.as_nanos()).unwrap_or(u64::MAX);
        // Pop this span's context entry. Guards drop in LIFO order per
        // thread under normal nesting; a stray out-of-order drop only
        // affects parent attribution, never memory safety.
        CONTEXT.with(|c| {
            let mut ctx = c.borrow_mut();
            if let Some(pos) = ctx
                .iter()
                .rposition(|&(tag, _, id)| tag == active.tracer.tag() && id == active.id)
            {
                ctx.remove(pos);
            }
        });
        let record = SpanRecord {
            trace: active.trace,
            id: active.id,
            parent: active.parent,
            name: active.name.to_string(),
            start_ns: end_ns.saturating_sub(dur_ns),
            dur_ns,
            tid: THREAD_TOKEN.with(|t| *t),
        };
        active.tracer.push(record);
    }
}

// ---------------------------------------------------------------------------
// Tree reconstruction
// ---------------------------------------------------------------------------

/// One node of a reconstructed span tree: an index into the record slice
/// plus the indices of its children (start-ordered).
#[derive(Debug, Clone)]
pub struct SpanNode {
    /// Index of this span in the slice passed to [`span_tree`].
    pub index: usize,
    /// Child nodes.
    pub children: Vec<SpanNode>,
}

/// Reconstructs the parent tree of `trace` from a record slice. Spans
/// whose parent is missing from the slice surface as roots (never lost).
pub fn span_tree(records: &[SpanRecord], trace: TraceId) -> Vec<SpanNode> {
    let in_trace: Vec<usize> = (0..records.len())
        .filter(|&i| records[i].trace == trace)
        .collect();
    let mut children_of: std::collections::HashMap<SpanId, Vec<usize>> =
        std::collections::HashMap::new();
    let mut roots = Vec::new();
    for &i in &in_trace {
        match records[i].parent {
            Some(p) if in_trace.iter().any(|&j| records[j].id == p) => {
                children_of.entry(p).or_default().push(i);
            }
            _ => roots.push(i),
        }
    }
    fn build(
        i: usize,
        records: &[SpanRecord],
        children_of: &std::collections::HashMap<SpanId, Vec<usize>>,
    ) -> SpanNode {
        let mut child_idx = children_of.get(&records[i].id).cloned().unwrap_or_default();
        child_idx.sort_by_key(|&j| (records[j].start_ns, records[j].id.0));
        SpanNode {
            index: i,
            children: child_idx
                .into_iter()
                .map(|j| build(j, records, children_of))
                .collect(),
        }
    }
    roots.sort_by_key(|&i| (records[i].start_ns, records[i].id.0));
    roots
        .into_iter()
        .map(|i| build(i, records, &children_of))
        .collect()
}

/// Renders a trace's span tree as an indented one-line-per-span string —
/// the human side of the slow-request log.
pub fn render_tree(records: &[SpanRecord], trace: TraceId) -> String {
    fn walk(node: &SpanNode, records: &[SpanRecord], depth: usize, out: &mut String) {
        let r = &records[node.index];
        out.push_str(&"  ".repeat(depth));
        out.push_str(&format!(
            "{} {:.3}ms @ {:.3}ms\n",
            r.name,
            r.dur_ns as f64 / 1e6,
            r.start_ns as f64 / 1e6
        ));
        for child in &node.children {
            walk(child, records, depth + 1, out);
        }
    }
    let mut out = String::new();
    for root in span_tree(records, trace) {
        walk(&root, records, 0, &mut out);
    }
    out
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

/// Renders one span as a JSONL [`Event`] (`"event":"span"`).
pub fn span_event(r: &SpanRecord) -> Event {
    let mut e = Event::new("span")
        .str("name", &r.name)
        .u64("trace", r.trace.0)
        .u64("span", r.id.0)
        .u64("start_ns", r.start_ns)
        .u64("dur_ns", r.dur_ns)
        .u64("tid", r.tid);
    if let Some(p) = r.parent {
        e = e.u64("parent", p.0);
    }
    e
}

/// Writes spans to a JSONL file, one [`span_event`] line each.
///
/// # Errors
/// Propagates IO failures.
pub fn export_jsonl<P: AsRef<Path>>(path: P, records: &[SpanRecord]) -> std::io::Result<()> {
    let sink = crate::sink::JsonlSink::create(path)?;
    for r in records {
        sink.emit(&span_event(r))?;
    }
    Ok(())
}

/// Renders spans as Chrome `trace_event` JSON: an object with a
/// `traceEvents` array of complete (`"ph":"X"`) events, start-ordered so
/// timestamps are monotone. Load the output in `chrome://tracing` or
/// [Perfetto](https://ui.perfetto.dev).
///
/// Timestamps are microseconds (f64) since the tracer epoch; the trace and
/// parent ids ride along in `args` for tooling that wants them.
pub fn chrome_trace_json(records: &[SpanRecord]) -> String {
    let mut sorted: Vec<&SpanRecord> = records.iter().collect();
    sorted.sort_by_key(|r| (r.start_ns, r.id.0));
    let mut out = String::with_capacity(64 + records.len() * 160);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, r) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        json::push_string(&mut out, &r.name);
        out.push_str(",\"cat\":\"widen\",\"ph\":\"X\",\"ts\":");
        json::push_f64(&mut out, r.start_ns as f64 / 1e3);
        out.push_str(",\"dur\":");
        json::push_f64(&mut out, r.dur_ns as f64 / 1e3);
        out.push_str(",\"pid\":1,\"tid\":");
        out.push_str(&r.tid.to_string());
        out.push_str(",\"args\":{\"trace\":");
        json::push_string(&mut out, &format!("{:016x}", r.trace.0));
        out.push_str(",\"span\":");
        json::push_string(&mut out, &format!("{:016x}", r.id.0));
        if let Some(p) = r.parent {
            out.push_str(",\"parent\":");
            json::push_string(&mut out, &format!("{:016x}", p.0));
        }
        out.push_str("}}");
    }
    out.push_str("]}");
    out
}

/// Writes [`chrome_trace_json`] to `path`.
///
/// # Errors
/// Propagates IO failures.
pub fn write_chrome_trace<P: AsRef<Path>>(path: P, records: &[SpanRecord]) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(chrome_trace_json(records).as_bytes())?;
    f.flush()
}

// ---------------------------------------------------------------------------
// Chrome-trace validation (tests + the trace_smoke CI bin)
// ---------------------------------------------------------------------------

/// Validates a [`chrome_trace_json`] document without a JSON dependency:
/// strict JSON well-formedness (a minimal recursive-descent parse), every
/// event a complete `"ph":"X"` record with `name`/`ts`/`dur`, and `ts`
/// monotone non-decreasing across the array. Returns the event count.
///
/// # Errors
/// Returns a description of the first violation.
pub fn validate_chrome_trace(text: &str) -> Result<usize, String> {
    let mut p = JsonParser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let doc = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    let JsonValue::Object(fields) = doc else {
        return Err("top level is not an object".into());
    };
    let events = fields
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .ok_or("missing traceEvents")?;
    let JsonValue::Array(events) = &events.1 else {
        return Err("traceEvents is not an array".into());
    };
    let mut last_ts = f64::NEG_INFINITY;
    for (i, ev) in events.iter().enumerate() {
        let JsonValue::Object(ev) = ev else {
            return Err(format!("event {i} is not an object"));
        };
        let get = |k: &str| ev.iter().find(|(n, _)| n == k).map(|(_, v)| v);
        match get("ph") {
            Some(JsonValue::Str(ph)) if ph == "X" => {}
            Some(JsonValue::Str(ph)) if ph == "B" || ph == "E" => {
                return Err(format!("event {i}: unmatched B/E event (exporter emits X)"));
            }
            _ => return Err(format!("event {i}: missing or non-X ph")),
        }
        if !matches!(get("name"), Some(JsonValue::Str(_))) {
            return Err(format!("event {i}: missing name"));
        }
        let Some(JsonValue::Num(ts)) = get("ts") else {
            return Err(format!("event {i}: missing numeric ts"));
        };
        let Some(JsonValue::Num(dur)) = get("dur") else {
            return Err(format!("event {i}: missing numeric dur"));
        };
        if !ts.is_finite() || !dur.is_finite() || *dur < 0.0 {
            return Err(format!("event {i}: non-finite ts/dur"));
        }
        if *ts < last_ts {
            return Err(format!("event {i}: ts {ts} < previous {last_ts}"));
        }
        last_ts = *ts;
    }
    Ok(events.len())
}

enum JsonValue {
    Null,
    // Payload parsed for well-formedness only; the validator never reads it.
    Bool(#[allow(dead_code)] bool),
    Num(f64),
    Str(String),
    Array(Vec<JsonValue>),
    Object(Vec<(String, JsonValue)>),
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl JsonParser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at offset {}", b as char, self.pos))
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(JsonValue::Str(self.parse_string()?)),
            Some(b't') => self.parse_lit("true", JsonValue::Bool(true)),
            Some(b'f') => self.parse_lit("false", JsonValue::Bool(false)),
            Some(b'n') => self.parse_lit("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(format!("unexpected byte at offset {}", self.pos)),
        }
    }

    fn parse_lit(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn parse_number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-utf8 number".to_string())?;
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| format!("bad number `{text}` at offset {start}"))
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "non-utf8 escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            // Surrogates only appear for astral chars the
                            // exporter writes raw; lone ones are an error.
                            out.push(char::from_u32(code).ok_or("surrogate in \\u escape")?);
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at offset {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(format!("raw control byte at offset {}", self.pos));
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let s = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "non-utf8 string content".to_string())?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected , or ] at offset {}", self.pos)),
            }
        }
    }

    fn parse_object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(format!("expected , or }} at offset {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_spans_reconstruct_parent_tree() {
        let tracer = Tracer::new(7);
        {
            let _root = tracer.span("core.test.root");
            {
                let _a = tracer.span("core.test.a");
                let _deep = tracer.span("core.test.a.deep");
            }
            let _b = tracer.span("core.test.b");
        }
        let records = tracer.drain();
        assert_eq!(records.len(), 4);
        let trace = records[0].trace;
        assert!(records.iter().all(|r| r.trace == trace));
        let tree = span_tree(&records, trace);
        assert_eq!(tree.len(), 1, "one root");
        let root = &tree[0];
        assert_eq!(records[root.index].name, "core.test.root");
        assert_eq!(root.children.len(), 2);
        assert_eq!(records[root.children[0].index].name, "core.test.a");
        assert_eq!(root.children[0].children.len(), 1);
        assert_eq!(
            records[root.children[0].children[0].index].name,
            "core.test.a.deep"
        );
        assert_eq!(records[root.children[1].index].name, "core.test.b");
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let tracer = Tracer::disabled(1);
        {
            let s = tracer.span("x");
            assert!(s.id().is_none());
            let _c = tracer.span("y");
        }
        tracer.record_complete(TraceId(1), None, "z", 0, 10);
        assert!(tracer.drain().is_empty());
    }

    #[test]
    fn sibling_traces_stay_separate() {
        let tracer = Tracer::new(3);
        let t1 = tracer.start_trace();
        let t2 = tracer.start_trace();
        assert_ne!(t1, t2);
        {
            let _r1 = tracer.root_span(t1, "one");
        }
        {
            let _r2 = tracer.root_span(t2, "two");
        }
        let records = tracer.drain();
        assert_eq!(span_tree(&records, t1).len(), 1);
        assert_eq!(span_tree(&records, t2).len(), 1);
        assert_eq!(records.len(), 2);
    }

    #[test]
    fn cross_thread_children_link_via_explicit_parent() {
        let tracer = Tracer::new(11);
        let trace = tracer.start_trace();
        let parent_id;
        {
            let root = tracer.root_span(trace, "serve.request");
            parent_id = root.id().unwrap();
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let tracer = tracer.clone();
                    std::thread::spawn(move || {
                        let _child = tracer.child_span(trace, parent_id, "serve.worker");
                        std::hint::black_box(1 + 1)
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        }
        let records = tracer.drain();
        assert_eq!(records.len(), 5);
        let tree = span_tree(&records, trace);
        assert_eq!(tree.len(), 1);
        assert_eq!(tree[0].children.len(), 4);
        for child in &tree[0].children {
            assert_eq!(records[child.index].parent, Some(parent_id));
        }
        // Workers recorded from distinct threads.
        let tids: std::collections::HashSet<u64> = tree[0]
            .children
            .iter()
            .map(|c| records[c.index].tid)
            .collect();
        assert!(tids.len() > 1, "expected multiple recording threads");
    }

    #[test]
    fn ids_are_seed_deterministic() {
        let a = Tracer::new(42);
        let b = Tracer::new(42);
        assert_eq!(a.start_trace(), b.start_trace());
        assert_eq!(a.start_trace(), b.start_trace());
        let c = Tracer::new(43);
        assert_ne!(a.start_trace(), c.start_trace());
    }

    #[test]
    fn chrome_export_is_valid_and_monotone() {
        let tracer = Tracer::new(5);
        {
            let _root = tracer.span("core.trainer.epoch");
            let _f = tracer.span("core.trainer.forward \"quoted\"\nname");
        }
        let records = tracer.drain();
        let json = chrome_trace_json(&records);
        let n = validate_chrome_trace(&json).expect("exporter output must validate");
        assert_eq!(n, 2);
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate_chrome_trace("").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":[}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":{}}").is_err());
        // Non-monotone ts.
        let bad = "{\"traceEvents\":[\
            {\"name\":\"a\",\"ph\":\"X\",\"ts\":5,\"dur\":1},\
            {\"name\":\"b\",\"ph\":\"X\",\"ts\":4,\"dur\":1}]}";
        assert!(validate_chrome_trace(bad).unwrap_err().contains("ts"));
        // B/E events are not what the exporter produces.
        let be = "{\"traceEvents\":[{\"name\":\"a\",\"ph\":\"B\",\"ts\":1,\"dur\":0}]}";
        assert!(validate_chrome_trace(be).is_err());
    }

    #[test]
    fn record_complete_registers_external_intervals() {
        let tracer = Tracer::new(9);
        let trace = tracer.start_trace();
        let root = tracer.record_complete(trace, None, "serve.request", 100, 50);
        tracer.record_complete(trace, Some(root), "serve.queue_wait", 100, 10);
        let records = tracer.drain();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].end_ns(), 150);
        let tree = span_tree(&records, trace);
        assert_eq!(tree.len(), 1);
        assert_eq!(tree[0].children.len(), 1);
        let rendered = render_tree(&records, trace);
        assert!(rendered.contains("serve.request"));
        assert!(rendered.contains("  serve.queue_wait"));
    }

    #[test]
    fn jsonl_export_writes_one_line_per_span() {
        let tracer = Tracer::new(13);
        {
            let _a = tracer.span("a");
        }
        {
            let _b = tracer.span("b");
        }
        let records = tracer.drain();
        let path =
            std::env::temp_dir().join(format!("widen-trace-jsonl-{}.jsonl", std::process::id()));
        export_jsonl(&path, &records).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(text.lines().count(), 2);
        assert!(text.lines().all(|l| l.starts_with("{\"event\":\"span\"")));
    }
}
