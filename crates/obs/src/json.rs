//! Minimal JSON emission helpers shared by snapshots and the JSONL sink.
//!
//! Deliberately write-only: the workspace's JSON *parsing* needs live in
//! the vendored `serde_json` stub; this crate only ever produces machine
//! lines, so a few escape-aware `push` helpers keep it dependency-free.

/// Appends `s` as a JSON string literal (quoted, escaped).
pub fn push_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a finite f64 in shortest-round-trip form; non-finite values
/// become `null` (JSON has no NaN/∞).
pub fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn render_str(s: &str) -> String {
        let mut out = String::new();
        push_string(&mut out, s);
        out
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(render_str("plain"), "\"plain\"");
        assert_eq!(render_str("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(render_str("line\nbreak\t"), "\"line\\nbreak\\t\"");
        assert_eq!(render_str("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn floats_render_shortest_and_null_non_finite() {
        let mut out = String::new();
        push_f64(&mut out, 1.0);
        out.push(',');
        push_f64(&mut out, 0.25);
        out.push(',');
        push_f64(&mut out, f64::NAN);
        out.push(',');
        push_f64(&mut out, f64::INFINITY);
        assert_eq!(out, "1,0.25,null,null");
    }
}
