//! Named metric registry with deterministic JSON snapshots.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};

#[derive(Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// Get-or-create registry of named instruments.
///
/// Registration takes a mutex, but that happens once per metric name per
/// holder — callers cache the returned `Arc` handle and then record through
/// atomics only. Names follow the `<layer>_<subject>[_<unit>][_total]`
/// scheme documented in DESIGN.md.
#[derive(Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-wide shared registry. Library layers without an obvious
    /// owner (e.g. sampling) record here; owned subsystems (a server, a
    /// trainer) should prefer their own instance so tests stay isolated.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    /// Handle for the counter `name`, creating it on first use.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut metrics = self.metrics.lock().expect("registry poisoned");
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())))
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric `{name}` is registered with a different kind"),
        }
    }

    /// Handle for the gauge `name`, creating it on first use.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut metrics = self.metrics.lock().expect("registry poisoned");
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new())))
        {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric `{name}` is registered with a different kind"),
        }
    }

    /// Handle for the histogram `name`, creating it with `bounds` on first
    /// use (later calls ignore `bounds` and return the existing instrument).
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Arc<Histogram> {
        let mut metrics = self.metrics.lock().expect("registry poisoned");
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new(bounds))))
        {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric `{name}` is registered with a different kind"),
        }
    }

    /// Point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> Snapshot {
        let metrics = self.metrics.lock().expect("registry poisoned");
        let mut snap = Snapshot::default();
        for (name, metric) in metrics.iter() {
            match metric {
                Metric::Counter(c) => snap.counters.push((name.clone(), c.get())),
                Metric::Gauge(g) => snap.gauges.push((name.clone(), g.get())),
                Metric::Histogram(h) => snap.histograms.push((name.clone(), h.snapshot())),
            }
        }
        snap
    }
}

/// Deterministically ordered (name-sorted) copy of a registry's state.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// `(name, value)` per counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` per gauge.
    pub gauges: Vec<(String, i64)>,
    /// `(name, state)` per histogram.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl Snapshot {
    /// Whether nothing was ever registered.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Value of a counter by name, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Value of a gauge by name, if present.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// State of a histogram by name, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Renders the snapshot as one JSON object:
    /// `{"counters":{...},"gauges":{...},"histograms":{...}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            crate::json::push_string(&mut out, name);
            out.push(':');
            out.push_str(&v.to_string());
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            crate::json::push_string(&mut out, name);
            out.push(':');
            out.push_str(&v.to_string());
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            crate::json::push_string(&mut out, name);
            out.push_str(":{\"buckets\":[");
            for (j, (&le, &n)) in h.bounds.iter().zip(&h.buckets).enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push('[');
                crate::json::push_f64(&mut out, le);
                out.push(',');
                out.push_str(&n.to_string());
                out.push(']');
            }
            out.push_str("],\"overflow\":");
            out.push_str(&h.overflow.to_string());
            out.push_str(",\"count\":");
            out.push_str(&h.count.to_string());
            out.push_str(",\"sum\":");
            crate::json::push_f64(&mut out, h.sum);
            out.push('}');
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_the_same_instrument() {
        let reg = Registry::new();
        let a = reg.counter("x_total");
        let b = reg.counter("x_total");
        a.inc();
        b.inc();
        assert_eq!(reg.snapshot().counter("x_total"), Some(2));
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_conflicts_are_programmer_errors() {
        let reg = Registry::new();
        let _ = reg.counter("x");
        let _ = reg.gauge("x");
    }

    #[test]
    fn snapshot_is_name_sorted_and_json_renders() {
        let reg = Registry::new();
        reg.counter("b_total").add(2);
        reg.counter("a_total").add(1);
        reg.gauge("depth").set(-3);
        reg.histogram("sizes", &[1.0, 2.0]).observe(1.5);
        let snap = reg.snapshot();
        assert_eq!(
            snap.counters
                .iter()
                .map(|(n, _)| n.as_str())
                .collect::<Vec<_>>(),
            vec!["a_total", "b_total"]
        );
        let json = snap.to_json();
        assert!(json.contains("\"a_total\":1"));
        assert!(json.contains("\"depth\":-3"));
        assert!(json.contains("\"sizes\":{\"buckets\":[[1,0],[2,1]]"));
        assert!(json.contains("\"count\":1"));
    }

    #[test]
    fn empty_snapshot_reports_empty() {
        assert!(Registry::new().snapshot().is_empty());
        assert_eq!(
            Registry::new().snapshot().to_json(),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{}}"
        );
    }

    #[test]
    fn global_registry_is_a_singleton() {
        let a: *const Registry = Registry::global();
        let b: *const Registry = Registry::global();
        assert!(std::ptr::eq(a, b));
    }
}
