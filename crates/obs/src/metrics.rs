//! Lock-free metric instruments: [`Counter`], [`Gauge`], [`Histogram`].
//!
//! Every instrument is a thin wrapper over std atomics — recording a value
//! is a handful of relaxed atomic operations, cheap enough for per-node
//! and per-request hot paths. Handles are shared as `Arc`s handed out by a
//! [`crate::Registry`]; cloning a handle never copies state.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Monotonically increasing counter (events, totals, accumulated nanos).
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A value that can go up and down (queue depths, live set sizes).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A gauge starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrites the value.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Fixed-bucket histogram with upper-bound (`≤ bound`) bucket semantics.
///
/// A value `v` lands in the first bucket whose bound satisfies
/// `v <= bound`; values above the last bound land in the overflow bucket.
/// Bucket counts, the observation count, and the running sum are all
/// atomics, so concurrent `observe` calls never lock. The sum is stored as
/// f64 bits behind a CAS loop — still lock-free.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    buckets: Vec<AtomicU64>,
    overflow: AtomicU64,
    count: AtomicU64,
    sum_bits: AtomicU64,
}

/// Point-in-time copy of a histogram's state.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Upper bounds, ascending; parallel to `buckets`.
    pub bounds: Vec<f64>,
    /// Observations with `v <= bounds[i]` (and `> bounds[i-1]`).
    pub buckets: Vec<u64>,
    /// Observations above the last bound.
    pub overflow: u64,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: f64,
}

impl HistogramSnapshot {
    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

impl Histogram {
    /// A histogram over the given ascending upper bounds.
    ///
    /// # Panics
    /// Panics if `bounds` is empty, non-finite, or not strictly ascending.
    pub fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        for pair in bounds.windows(2) {
            assert!(
                pair[0] < pair[1],
                "histogram bounds must be strictly ascending"
            );
        }
        assert!(
            bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite"
        );
        Self {
            bounds: bounds.to_vec(),
            buckets: bounds.iter().map(|_| AtomicU64::new(0)).collect(),
            overflow: AtomicU64::new(0),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Records one observation. Non-finite values are counted in the
    /// overflow bucket and excluded from the sum.
    pub fn observe(&self, v: f64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        match self.bounds.iter().position(|&b| v <= b) {
            Some(i) if v.is_finite() => {
                self.buckets[i].fetch_add(1, Ordering::Relaxed);
            }
            _ => {
                self.overflow.fetch_add(1, Ordering::Relaxed);
            }
        }
        if v.is_finite() {
            let mut current = self.sum_bits.load(Ordering::Relaxed);
            loop {
                let next = (f64::from_bits(current) + v).to_bits();
                match self.sum_bits.compare_exchange_weak(
                    current,
                    next,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(actual) => current = actual,
                }
            }
        }
    }

    /// The configured upper bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Copies the current state out.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            overflow: self.overflow.load(Ordering::Relaxed),
            count: self.count.load(Ordering::Relaxed),
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
        }
    }
}

/// Ready-made bucket ladders for the workspace's common shapes.
pub mod buckets {
    /// Small integer counts: neighbour-set sizes, fused batch sizes.
    pub const SMALL_COUNTS: &[f64] = &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0];
    /// Microsecond latencies: coalescing waits, queue residency.
    pub const LATENCY_US: &[f64] = &[
        50.0, 100.0, 250.0, 500.0, 1_000.0, 2_500.0, 5_000.0, 10_000.0, 50_000.0, 250_000.0,
    ];
    /// Second-scale durations: epoch phases, end-to-end runs.
    pub const DURATION_SECS: &[f64] = &[0.001, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 15.0, 60.0, 300.0];
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn concurrent_counter_increments_sum_exactly() {
        let c = Arc::new(Counter::new());
        let threads = 8;
        let per_thread = 10_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..per_thread {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), threads as u64 * per_thread);
    }

    #[test]
    fn histogram_bucket_boundaries_are_inclusive_upper() {
        let h = Histogram::new(&[1.0, 2.0, 4.0]);
        h.observe(0.5); // ≤ 1 → bucket 0
        h.observe(1.0); // boundary value goes to its own bucket
        h.observe(1.0001); // just above → bucket 1
        h.observe(2.0); // bucket 1
        h.observe(4.0); // bucket 2
        h.observe(4.0001); // overflow
        let s = h.snapshot();
        assert_eq!(s.buckets, vec![2, 2, 1]);
        assert_eq!(s.overflow, 1);
        assert_eq!(s.count, 6);
        assert!((s.sum - 12.5002).abs() < 1e-9);
    }

    #[test]
    fn histogram_handles_non_finite_values() {
        let h = Histogram::new(&[1.0]);
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        let s = h.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.overflow, 2);
        assert_eq!(s.sum, 0.0);
    }

    #[test]
    fn concurrent_histogram_observations_count_exactly() {
        let h = Arc::new(Histogram::new(buckets::SMALL_COUNTS));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..5_000 {
                        h.observe(f64::from((t * 5_000 + i) % 200));
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        let s = h.snapshot();
        assert_eq!(s.count, 20_000);
        assert_eq!(s.buckets.iter().sum::<u64>() + s.overflow, 20_000);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unsorted_bounds_rejected() {
        let _ = Histogram::new(&[2.0, 1.0]);
    }

    #[test]
    fn snapshot_mean() {
        let h = Histogram::new(&[10.0]);
        assert_eq!(h.snapshot().mean(), 0.0);
        h.observe(2.0);
        h.observe(4.0);
        assert!((h.snapshot().mean() - 3.0).abs() < 1e-12);
    }
}
