//! Lock-free metric instruments: [`Counter`], [`Gauge`], [`Histogram`].
//!
//! Every instrument is a thin wrapper over std atomics — recording a value
//! is a handful of relaxed atomic operations, cheap enough for per-node
//! and per-request hot paths. Handles are shared as `Arc`s handed out by a
//! [`crate::Registry`]; cloning a handle never copies state.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Monotonically increasing counter (events, totals, accumulated nanos).
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A value that can go up and down (queue depths, live set sizes).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A gauge starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrites the value.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Fixed-bucket histogram with upper-bound (`≤ bound`) bucket semantics.
///
/// A value `v` lands in the first bucket whose bound satisfies
/// `v <= bound`; values above the last bound land in the overflow bucket.
/// Bucket counts, the observation count, and the running sum are all
/// atomics, so concurrent `observe` calls never lock. The sum is stored as
/// f64 bits behind a CAS loop — still lock-free.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    buckets: Vec<AtomicU64>,
    overflow: AtomicU64,
    count: AtomicU64,
    sum_bits: AtomicU64,
    max_bits: AtomicU64,
}

/// Point-in-time copy of a histogram's state.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Upper bounds, ascending; parallel to `buckets`.
    pub bounds: Vec<f64>,
    /// Observations with `v <= bounds[i]` (and `> bounds[i-1]`).
    pub buckets: Vec<u64>,
    /// Observations above the last bound.
    pub overflow: u64,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: f64,
    /// Largest finite value observed (0 when nothing finite was recorded).
    pub max: f64,
}

impl HistogramSnapshot {
    /// Mean observed value. NaN-safe: returns 0 when empty and ignores a
    /// corrupted (non-finite) sum rather than propagating it.
    pub fn mean(&self) -> f64 {
        if self.count == 0 || !self.sum.is_finite() {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Estimated `q`-quantile (`0 ≤ q ≤ 1`), interpolated within buckets in
    /// the Prometheus `histogram_quantile` style.
    ///
    /// Returns `None` when the histogram is empty. `q` is clamped to
    /// `[0, 1]` (and NaN is treated as 0). The target rank `q · count` is
    /// located by walking cumulative bucket counts; within the containing
    /// bucket the value is linearly interpolated between the bucket's lower
    /// and upper bound (the first bucket's lower bound is taken as 0 when
    /// its upper bound is positive, else as the bound itself). Ranks that
    /// land in the overflow bucket return the maximum observed value, the
    /// only upper edge we know above the last bound. Because the exact max
    /// is tracked alongside the buckets, every estimate is additionally
    /// capped at it — a quantile never reports a value no observation
    /// reached.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
        let rank = q * self.count as f64;
        let mut cum = 0u64;
        for (i, (&upper, &n)) in self.bounds.iter().zip(&self.buckets).enumerate() {
            if n == 0 {
                continue;
            }
            let next = cum + n;
            if rank <= next as f64 {
                let lower = if i == 0 {
                    if upper > 0.0 {
                        0.0
                    } else {
                        upper
                    }
                } else {
                    self.bounds[i - 1]
                };
                let frac = ((rank - cum as f64) / n as f64).clamp(0.0, 1.0);
                return Some((lower + (upper - lower) * frac).min(self.max));
            }
            cum = next;
        }
        // Rank fell past every bounded bucket: the overflow region. Its only
        // known edge is the observed max.
        Some(self.max)
    }

    /// Condensed latency-SLO view: p50/p90/p99 plus max and count.
    pub fn slo_report(&self) -> SloReport {
        SloReport {
            p50: self.quantile(0.50).unwrap_or(0.0),
            p90: self.quantile(0.90).unwrap_or(0.0),
            p99: self.quantile(0.99).unwrap_or(0.0),
            max: self.max,
            count: self.count,
        }
    }
}

/// Percentile summary of one histogram, the unit of an SLO dashboard row.
///
/// Produced by [`HistogramSnapshot::slo_report`]; all quantiles are bucket
/// interpolations (see [`HistogramSnapshot::quantile`]), `max` is exact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloReport {
    /// Median estimate.
    pub p50: f64,
    /// 90th-percentile estimate.
    pub p90: f64,
    /// 99th-percentile estimate.
    pub p99: f64,
    /// Largest finite observation (exact, not interpolated).
    pub max: f64,
    /// Total observations backing the estimates.
    pub count: u64,
}

impl SloReport {
    /// Appends the report as one JSON object
    /// (`{"p50":…,"p90":…,"p99":…,"max":…,"count":…}`) to `out`.
    pub fn push_json(&self, out: &mut String) {
        out.push_str("{\"p50\":");
        crate::json::push_f64(out, self.p50);
        out.push_str(",\"p90\":");
        crate::json::push_f64(out, self.p90);
        out.push_str(",\"p99\":");
        crate::json::push_f64(out, self.p99);
        out.push_str(",\"max\":");
        crate::json::push_f64(out, self.max);
        out.push_str(",\"count\":");
        out.push_str(&self.count.to_string());
        out.push('}');
    }

    /// The report as a standalone JSON string.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        self.push_json(&mut out);
        out
    }
}

impl Histogram {
    /// A histogram over the given ascending upper bounds.
    ///
    /// # Panics
    /// Panics if `bounds` is empty, non-finite, or not strictly ascending.
    pub fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        for pair in bounds.windows(2) {
            assert!(
                pair[0] < pair[1],
                "histogram bounds must be strictly ascending"
            );
        }
        assert!(
            bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite"
        );
        Self {
            bounds: bounds.to_vec(),
            buckets: bounds.iter().map(|_| AtomicU64::new(0)).collect(),
            overflow: AtomicU64::new(0),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }

    /// Records one observation. Non-finite values are counted in the
    /// overflow bucket and excluded from the sum.
    pub fn observe(&self, v: f64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        match self.bounds.iter().position(|&b| v <= b) {
            Some(i) if v.is_finite() => {
                self.buckets[i].fetch_add(1, Ordering::Relaxed);
            }
            _ => {
                self.overflow.fetch_add(1, Ordering::Relaxed);
            }
        }
        if v.is_finite() {
            let mut current = self.sum_bits.load(Ordering::Relaxed);
            loop {
                let next = (f64::from_bits(current) + v).to_bits();
                match self.sum_bits.compare_exchange_weak(
                    current,
                    next,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(actual) => current = actual,
                }
            }
            let mut current = self.max_bits.load(Ordering::Relaxed);
            while v > f64::from_bits(current) {
                match self.max_bits.compare_exchange_weak(
                    current,
                    v.to_bits(),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(actual) => current = actual,
                }
            }
        }
    }

    /// The configured upper bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Copies the current state out.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            overflow: self.overflow.load(Ordering::Relaxed),
            count: self.count.load(Ordering::Relaxed),
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
            max: {
                let m = f64::from_bits(self.max_bits.load(Ordering::Relaxed));
                if m.is_finite() {
                    m
                } else {
                    0.0
                }
            },
        }
    }
}

/// Ready-made bucket ladders for the workspace's common shapes.
pub mod buckets {
    /// Small integer counts: neighbour-set sizes, fused batch sizes.
    pub const SMALL_COUNTS: &[f64] = &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0];
    /// Microsecond latencies: coalescing waits, queue residency.
    pub const LATENCY_US: &[f64] = &[
        50.0, 100.0, 250.0, 500.0, 1_000.0, 2_500.0, 5_000.0, 10_000.0, 50_000.0, 250_000.0,
    ];
    /// Second-scale durations: epoch phases, end-to-end runs.
    pub const DURATION_SECS: &[f64] = &[0.001, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 15.0, 60.0, 300.0];
    /// Fine-grained microsecond latencies with ~2–2.5× steps: event-loop
    /// ticks and request lifecycle phases, where interpolated p99s need
    /// tighter buckets than [`LATENCY_US`] offers.
    pub const LATENCY_US_FINE: &[f64] = &[
        1.0,
        2.0,
        5.0,
        10.0,
        25.0,
        50.0,
        100.0,
        250.0,
        500.0,
        1_000.0,
        2_500.0,
        5_000.0,
        10_000.0,
        25_000.0,
        50_000.0,
        100_000.0,
        250_000.0,
        1_000_000.0,
    ];
    /// Byte sizes: write-buffer high-water marks, frame payloads.
    pub const BYTES: &[f64] = &[
        256.0,
        1_024.0,
        4_096.0,
        16_384.0,
        65_536.0,
        262_144.0,
        1_048_576.0,
        4_194_304.0,
    ];
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn concurrent_counter_increments_sum_exactly() {
        let c = Arc::new(Counter::new());
        let threads = 8;
        let per_thread = 10_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..per_thread {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), threads as u64 * per_thread);
    }

    #[test]
    fn histogram_bucket_boundaries_are_inclusive_upper() {
        let h = Histogram::new(&[1.0, 2.0, 4.0]);
        h.observe(0.5); // ≤ 1 → bucket 0
        h.observe(1.0); // boundary value goes to its own bucket
        h.observe(1.0001); // just above → bucket 1
        h.observe(2.0); // bucket 1
        h.observe(4.0); // bucket 2
        h.observe(4.0001); // overflow
        let s = h.snapshot();
        assert_eq!(s.buckets, vec![2, 2, 1]);
        assert_eq!(s.overflow, 1);
        assert_eq!(s.count, 6);
        assert!((s.sum - 12.5002).abs() < 1e-9);
    }

    #[test]
    fn histogram_handles_non_finite_values() {
        let h = Histogram::new(&[1.0]);
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        let s = h.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.overflow, 2);
        assert_eq!(s.sum, 0.0);
    }

    #[test]
    fn concurrent_histogram_observations_count_exactly() {
        let h = Arc::new(Histogram::new(buckets::SMALL_COUNTS));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..5_000 {
                        h.observe(f64::from((t * 5_000 + i) % 200));
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        let s = h.snapshot();
        assert_eq!(s.count, 20_000);
        assert_eq!(s.buckets.iter().sum::<u64>() + s.overflow, 20_000);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unsorted_bounds_rejected() {
        let _ = Histogram::new(&[2.0, 1.0]);
    }

    #[test]
    fn snapshot_mean() {
        let h = Histogram::new(&[10.0]);
        assert_eq!(h.snapshot().mean(), 0.0);
        h.observe(2.0);
        h.observe(4.0);
        assert!((h.snapshot().mean() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn mean_is_nan_safe_on_zero_observations_and_corrupt_sums() {
        let empty = Histogram::new(&[1.0]).snapshot();
        assert_eq!(empty.mean(), 0.0);
        assert!(!empty.mean().is_nan());
        // A snapshot whose sum was poisoned must not propagate NaN.
        let mut poisoned = empty;
        poisoned.count = 3;
        poisoned.sum = f64::NAN;
        assert_eq!(poisoned.mean(), 0.0);
    }

    #[test]
    fn quantile_of_empty_histogram_is_none() {
        let s = Histogram::new(&[1.0, 2.0]).snapshot();
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.quantile(0.0), None);
        assert_eq!(s.quantile(1.0), None);
    }

    #[test]
    fn quantile_single_bucket_interpolates_from_zero() {
        let h = Histogram::new(&[100.0]);
        for _ in 0..10 {
            h.observe(50.0);
        }
        let s = h.snapshot();
        // All mass in one bucket spanning (0, 100]: the q-quantile is the
        // linear interpolation q·100, capped at the exact observed max —
        // q = 1 reports 50, not the bucket edge no observation reached.
        assert!((s.quantile(0.5).unwrap() - 50.0).abs() < 1e-9);
        assert!((s.quantile(1.0).unwrap() - 50.0).abs() < 1e-9);
        assert_eq!(s.quantile(0.0).unwrap(), 0.0);
    }

    #[test]
    fn quantile_interpolates_between_bucket_bounds() {
        let h = Histogram::new(&[10.0, 20.0, 40.0]);
        // 4 obs ≤ 10, 4 obs in (10, 20], 2 obs in (20, 40].
        for v in [1.0, 2.0, 3.0, 4.0, 11.0, 12.0, 13.0, 14.0, 25.0, 30.0] {
            h.observe(v);
        }
        let s = h.snapshot();
        // rank(0.5) = 5 → 1 into the 4-wide (10,20] bucket → 10 + 10·(1/4).
        assert!((s.quantile(0.5).unwrap() - 12.5).abs() < 1e-9);
        // rank(0.9) = 9 → 1 into the 2-wide (20,40] bucket → 20 + 20·(1/2).
        assert!((s.quantile(0.9).unwrap() - 30.0).abs() < 1e-9);
        // rank(0.4) = 4 → exactly the top of the first bucket.
        assert!((s.quantile(0.4).unwrap() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn quantile_in_overflow_bucket_returns_observed_max() {
        let h = Histogram::new(&[10.0]);
        h.observe(5.0);
        h.observe(1_000.0);
        h.observe(2_000.0);
        let s = h.snapshot();
        assert_eq!(s.max, 2_000.0);
        // p99 rank lands past the bounded buckets → exact max, not a guess.
        assert_eq!(s.quantile(0.99).unwrap(), 2_000.0);
        assert_eq!(s.quantile(1.0).unwrap(), 2_000.0);
        // p-low still resolves inside the bounded region.
        assert!(s.quantile(0.2).unwrap() <= 10.0);
    }

    #[test]
    fn quantile_clamps_out_of_range_q_and_nan() {
        let h = Histogram::new(&[10.0]);
        h.observe(5.0);
        let s = h.snapshot();
        assert_eq!(s.quantile(-3.0), s.quantile(0.0));
        assert_eq!(s.quantile(7.0), s.quantile(1.0));
        assert_eq!(s.quantile(f64::NAN), s.quantile(0.0));
    }

    #[test]
    fn max_tracks_largest_finite_observation() {
        let h = Histogram::new(&[10.0]);
        assert_eq!(h.snapshot().max, 0.0);
        h.observe(3.0);
        h.observe(f64::INFINITY); // excluded: not a finite observation
        h.observe(7.5);
        h.observe(2.0);
        assert_eq!(h.snapshot().max, 7.5);
    }

    #[test]
    fn slo_report_summarises_and_renders_json() {
        let h = Histogram::new(buckets::LATENCY_US_FINE);
        for i in 0..100 {
            h.observe(f64::from(i) * 10.0);
        }
        let r = h.snapshot().slo_report();
        assert_eq!(r.count, 100);
        assert_eq!(r.max, 990.0);
        assert!(r.p50 <= r.p90 && r.p90 <= r.p99 && r.p99 <= r.max);
        let json = r.to_json();
        assert!(json.starts_with("{\"p50\":"));
        assert!(json.contains("\"count\":100"));
        assert!(json.ends_with('}'));

        let empty = Histogram::new(&[1.0]).snapshot().slo_report();
        assert_eq!(
            (empty.p50, empty.p90, empty.p99, empty.max, empty.count),
            (0.0, 0.0, 0.0, 0.0, 0)
        );
    }
}

#[cfg(test)]
mod quantile_properties {
    use super::*;
    use proptest::prelude::*;

    /// Exact nearest-rank quantile of a sorted sample (rank ⌈q·n⌉).
    fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
        let n = sorted.len();
        let rank = (q * n as f64).ceil().max(1.0) as usize;
        sorted[rank.min(n) - 1]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The interpolated quantile never strays outside the bucket that
        /// contains the exact sorted-sample quantile: the estimate is
        /// bounded by that bucket's lower and upper edges.
        #[test]
        fn quantile_agrees_with_exact_sample_quantile_to_bucket_width(
            seed in 0u64..10_000,
            n in 1usize..400,
            qi in 0usize..5,
        ) {
            let q = [0.1, 0.5, 0.9, 0.99, 1.0][qi];
            let bounds = buckets::LATENCY_US_FINE;
            let h = Histogram::new(bounds);
            // Deterministic splitmix-style values in [0, ~1.28M): covers
            // every bucket including overflow.
            let mut samples = Vec::with_capacity(n);
            let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
            for _ in 0..n {
                x ^= x >> 30;
                x = x.wrapping_mul(0xBF58476D1CE4E5B9);
                x ^= x >> 27;
                let v = (x % 1_280_000) as f64;
                h.observe(v);
                samples.push(v);
            }
            samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let snap = h.snapshot();
            let got = snap.quantile(q).unwrap();
            let exact = exact_quantile(&samples, q);
            // Bucket containing the exact value → [lower, upper] envelope.
            let idx = bounds.iter().position(|&b| exact <= b);
            let (lower, upper) = match idx {
                Some(0) => (0.0, bounds[0]),
                Some(i) => (bounds[i - 1], bounds[i]),
                // Overflow bucket: quantile() reports the observed max.
                None => (bounds[bounds.len() - 1], snap.max),
            };
            prop_assert!(
                got >= lower - 1e-9 && got <= upper + 1e-9,
                "q={} got={} exact={} bucket=[{}, {}]",
                q, got, exact, lower, upper
            );
        }
    }
}
