//! Always-on flight recorder: a fixed-size, lock-sharded ring of recent
//! request timelines.
//!
//! The recorder answers the question tracing cannot: *what was happening
//! just before the anomaly* — without anyone having asked for a trace in
//! advance. Every request writes one [`FlightRecord`] (a `Copy` struct,
//! no allocation) into a sharded ring buffer; steady-state cost is one
//! short shard-mutex hold and a slot store. When an anomaly fires (a shed,
//! a deadline drop, a slow request) the owner calls [`FlightRecorder::dump_jsonl`]
//! to freeze the window as a JSONL post-mortem.
//!
//! Sharding keeps concurrent writers (reactor thread, worker threads) off
//! a single lock; records carry a global sequence number so a dump can be
//! re-ordered into arrival order.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Maximum lifecycle phases one record can carry.
pub const MAX_PHASES: usize = 8;

/// One named span within a request's lifetime, in microseconds relative to
/// the request's start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseStamp {
    /// Phase name (`"queue_wait"`, `"coalesce"`, `"forward"`, …).
    pub name: &'static str,
    /// Offset of the phase start from the request's first stamp.
    pub start_us: u64,
    /// Phase duration.
    pub dur_us: u64,
}

/// One request's condensed timeline: identity, lifecycle stamps, outcome.
///
/// `Copy` and allocation-free by construction so recording never touches
/// the allocator on the serve hot path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightRecord {
    /// Wire-protocol request id (client-chosen; 0 for connection-level
    /// events that never carried a request).
    pub id: u64,
    /// Recorder-assigned global sequence number (arrival order).
    pub seq: u64,
    /// Request kind (`"embed"`, `"classify"`, `"ingest"`, `"conn"`, …).
    pub kind: &'static str,
    /// Node count carried by the request (0 when not applicable).
    pub nodes: u32,
    /// Outcome tag (`"ok"`, `"shed"`, `"rejected"`, `"deadline"`,
    /// `"error"`, `"slow"`).
    pub outcome: &'static str,
    /// End-to-end latency in microseconds.
    pub total_us: u64,
    /// Lifecycle phases; only the first `phase_count` entries are valid.
    pub phases: [PhaseStamp; MAX_PHASES],
    /// Number of valid entries in `phases`.
    pub phase_count: u8,
}

impl FlightRecord {
    /// A record with no phases yet; `seq` is assigned by the recorder.
    pub fn new(id: u64, kind: &'static str) -> Self {
        Self {
            id,
            seq: 0,
            kind,
            nodes: 0,
            outcome: "ok",
            total_us: 0,
            phases: [PhaseStamp::default(); MAX_PHASES],
            phase_count: 0,
        }
    }

    /// Appends a phase; silently drops past [`MAX_PHASES`] (a record is a
    /// summary, not a trace).
    pub fn push_phase(&mut self, name: &'static str, start_us: u64, dur_us: u64) {
        if (self.phase_count as usize) < MAX_PHASES {
            self.phases[self.phase_count as usize] = PhaseStamp {
                name,
                start_us,
                dur_us,
            };
            self.phase_count += 1;
        }
    }

    /// The valid phases.
    pub fn phases(&self) -> &[PhaseStamp] {
        &self.phases[..self.phase_count as usize]
    }

    /// Appends the record as one JSON object (no trailing newline).
    pub fn push_json(&self, out: &mut String) {
        out.push_str("{\"seq\":");
        out.push_str(&self.seq.to_string());
        out.push_str(",\"id\":");
        out.push_str(&self.id.to_string());
        out.push_str(",\"kind\":");
        crate::json::push_string(out, self.kind);
        out.push_str(",\"nodes\":");
        out.push_str(&self.nodes.to_string());
        out.push_str(",\"outcome\":");
        crate::json::push_string(out, self.outcome);
        out.push_str(",\"total_us\":");
        out.push_str(&self.total_us.to_string());
        out.push_str(",\"phases\":[");
        for (i, p) in self.phases().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            crate::json::push_string(out, p.name);
            out.push_str(",\"start_us\":");
            out.push_str(&p.start_us.to_string());
            out.push_str(",\"dur_us\":");
            out.push_str(&p.dur_us.to_string());
            out.push('}');
        }
        out.push_str("]}");
    }
}

struct Shard {
    slots: Vec<Option<FlightRecord>>,
    next: usize,
}

/// Lock-sharded ring buffer of the most recent [`FlightRecord`]s.
///
/// Capacity is split across a fixed number of shards; writers pick a shard
/// from their sequence number, so contention only occurs between writers
/// landing on the same shard in the same instant. A recorder with
/// capacity 0 is disabled: recording is a no-op and dumps are empty.
pub struct FlightRecorder {
    shards: Vec<Mutex<Shard>>,
    seq: AtomicU64,
}

const SHARDS: usize = 8;

impl FlightRecorder {
    /// A recorder keeping roughly the `capacity` most recent records
    /// (rounded up to a multiple of the shard count; 0 disables).
    pub fn new(capacity: usize) -> Self {
        let shards = if capacity == 0 {
            Vec::new()
        } else {
            let per_shard = capacity.div_ceil(SHARDS);
            (0..SHARDS)
                .map(|_| {
                    Mutex::new(Shard {
                        slots: vec![None; per_shard],
                        next: 0,
                    })
                })
                .collect()
        };
        Self {
            shards,
            seq: AtomicU64::new(0),
        }
    }

    /// Whether recording is a no-op.
    pub fn is_disabled(&self) -> bool {
        self.shards.is_empty()
    }

    /// Total slot capacity.
    pub fn capacity(&self) -> usize {
        self.shards.len()
            * self
                .shards
                .first()
                .map_or(0, |s| s.lock().unwrap().slots.len())
    }

    /// Records one timeline, assigning its sequence number. Steady-state
    /// cost: one atomic increment, one shard mutex, one slot store.
    pub fn record(&self, mut rec: FlightRecord) {
        if self.shards.is_empty() {
            return;
        }
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        rec.seq = seq;
        let mut shard = self.shards[(seq as usize) % self.shards.len()]
            .lock()
            .expect("recorder shard poisoned");
        let next = shard.next;
        shard.slots[next] = Some(rec);
        shard.next = (next + 1) % shard.slots.len();
    }

    /// Copies the live window out, oldest first (by sequence number).
    pub fn snapshot(&self) -> Vec<FlightRecord> {
        let mut records: Vec<FlightRecord> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.lock()
                    .expect("recorder shard poisoned")
                    .slots
                    .iter()
                    .flatten()
                    .copied()
                    .collect::<Vec<_>>()
            })
            .collect();
        records.sort_by_key(|r| r.seq);
        records
    }

    /// Renders the live window as JSONL (one record per line, oldest
    /// first). Empty string when nothing was recorded.
    pub fn dump_jsonl(&self) -> String {
        let records = self.snapshot();
        let mut out = String::with_capacity(records.len() * 160);
        for rec in &records {
            rec.push_json(&mut out);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn rec(id: u64, outcome: &'static str) -> FlightRecord {
        let mut r = FlightRecord::new(id, "embed");
        r.outcome = outcome;
        r.nodes = 3;
        r.total_us = 100 + id;
        r.push_phase("queue_wait", 1, 10);
        r.push_phase("forward", 11, 80);
        r
    }

    #[test]
    fn records_come_back_in_sequence_order() {
        let fr = FlightRecorder::new(64);
        for i in 0..10 {
            fr.record(rec(i, "ok"));
        }
        let snap = fr.snapshot();
        assert_eq!(snap.len(), 10);
        let ids: Vec<u64> = snap.iter().map(|r| r.id).collect();
        assert_eq!(ids, (0..10).collect::<Vec<_>>());
        assert!(snap.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn ring_keeps_only_the_most_recent_window() {
        let fr = FlightRecorder::new(16);
        let cap = fr.capacity();
        for i in 0..200 {
            fr.record(rec(i, "ok"));
        }
        let snap = fr.snapshot();
        assert_eq!(snap.len(), cap);
        // Everything surviving is from the tail of the stream.
        assert!(snap.iter().all(|r| r.id >= 200 - cap as u64));
    }

    #[test]
    fn zero_capacity_disables_recording() {
        let fr = FlightRecorder::new(0);
        assert!(fr.is_disabled());
        fr.record(rec(1, "ok"));
        assert!(fr.snapshot().is_empty());
        assert_eq!(fr.dump_jsonl(), "");
    }

    #[test]
    fn phase_overflow_is_dropped_not_panicked() {
        let mut r = FlightRecord::new(1, "embed");
        for i in 0..(MAX_PHASES + 4) {
            r.push_phase("p", i as u64, 1);
        }
        assert_eq!(r.phases().len(), MAX_PHASES);
    }

    #[test]
    fn dump_is_one_json_object_per_line() {
        let fr = FlightRecorder::new(8);
        fr.record(rec(7, "shed"));
        fr.record(rec(8, "ok"));
        let dump = fr.dump_jsonl();
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
            assert!(line.contains("\"seq\":"));
            assert!(line.contains("\"phases\":["));
        }
        assert!(lines[0].contains("\"outcome\":\"shed\""));
        assert!(lines[0].contains("\"id\":7"));
        assert!(lines[0].contains("\"name\":\"queue_wait\""));
    }

    #[test]
    fn concurrent_recording_is_safe_and_loses_nothing_under_capacity() {
        let fr = Arc::new(FlightRecorder::new(4096));
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let fr = fr.clone();
                std::thread::spawn(move || {
                    for i in 0..256u64 {
                        fr.record(rec(t * 1_000 + i, "ok"));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = fr.snapshot();
        assert_eq!(snap.len(), 8 * 256);
        // Sequence numbers are unique.
        let mut seqs: Vec<u64> = snap.iter().map(|r| r.seq).collect();
        seqs.dedup();
        assert_eq!(seqs.len(), 8 * 256);
    }
}
