//! Structured JSONL event sink.
//!
//! One [`Event`] becomes one line of JSON, written and flushed atomically
//! under a mutex — safe to share across trainer threads, cheap at the
//! once-per-epoch / once-per-run rates it is meant for (this is the trace
//! channel, not the hot-path counter channel).

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::json;

/// A field value in an [`Event`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (non-finite renders as `null`).
    F64(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
}

/// An ordered bag of named fields, rendered as one JSON object with the
/// event name first: `{"event":"epoch","epoch":3,...}`.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    name: String,
    fields: Vec<(String, Value)>,
}

impl Event {
    /// A new event of the given kind.
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            fields: Vec::new(),
        }
    }

    /// Adds an unsigned integer field.
    #[must_use]
    pub fn u64(mut self, key: &str, v: u64) -> Self {
        self.fields.push((key.to_string(), Value::U64(v)));
        self
    }

    /// Adds a signed integer field.
    #[must_use]
    pub fn i64(mut self, key: &str, v: i64) -> Self {
        self.fields.push((key.to_string(), Value::I64(v)));
        self
    }

    /// Adds a float field.
    #[must_use]
    pub fn f64(mut self, key: &str, v: f64) -> Self {
        self.fields.push((key.to_string(), Value::F64(v)));
        self
    }

    /// Adds a string field.
    #[must_use]
    pub fn str(mut self, key: &str, v: &str) -> Self {
        self.fields
            .push((key.to_string(), Value::Str(v.to_string())));
        self
    }

    /// Adds a boolean field.
    #[must_use]
    pub fn bool(mut self, key: &str, v: bool) -> Self {
        self.fields.push((key.to_string(), Value::Bool(v)));
        self
    }

    /// Renders the event as a single JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.fields.len() * 16);
        out.push_str("{\"event\":");
        json::push_string(&mut out, &self.name);
        for (key, value) in &self.fields {
            out.push(',');
            json::push_string(&mut out, key);
            out.push(':');
            match value {
                Value::U64(v) => out.push_str(&v.to_string()),
                Value::I64(v) => out.push_str(&v.to_string()),
                Value::F64(v) => json::push_f64(&mut out, *v),
                Value::Str(v) => json::push_string(&mut out, v),
                Value::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
            }
        }
        out.push('}');
        out
    }
}

/// Append-only JSONL file: one [`Event`] per line, flushed per emit so a
/// crashed or killed run still leaves every completed record on disk.
pub struct JsonlSink {
    out: Mutex<BufWriter<File>>,
    path: PathBuf,
}

impl JsonlSink {
    /// Creates (truncates) `path` and returns a sink writing to it.
    ///
    /// # Errors
    /// Propagates file-creation failures.
    pub fn create<P: AsRef<Path>>(path: P) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = File::create(&path)?;
        Ok(Self {
            out: Mutex::new(BufWriter::new(file)),
            path,
        })
    }

    /// The file this sink writes to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Writes one event as one line and flushes. IO failures are reported
    /// but must not take down the instrumented computation.
    ///
    /// # Errors
    /// Propagates write failures.
    pub fn emit(&self, event: &Event) -> std::io::Result<()> {
        let mut out = self.out.lock().expect("sink poisoned");
        out.write_all(event.to_json().as_bytes())?;
        out.write_all(b"\n")?;
        out.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_render_in_insertion_order() {
        let e = Event::new("epoch")
            .u64("epoch", 3)
            .f64("loss", 0.5)
            .f64("kl", f64::NAN)
            .str("dataset", "acm")
            .i64("delta", -2)
            .bool("converged", false);
        assert_eq!(
            e.to_json(),
            "{\"event\":\"epoch\",\"epoch\":3,\"loss\":0.5,\"kl\":null,\
             \"dataset\":\"acm\",\"delta\":-2,\"converged\":false}"
        );
    }

    #[test]
    fn sink_writes_one_line_per_event() {
        let path =
            std::env::temp_dir().join(format!("widen-obs-sink-test-{}.jsonl", std::process::id()));
        let sink = JsonlSink::create(&path).unwrap();
        for i in 0..4u64 {
            sink.emit(&Event::new("tick").u64("i", i)).unwrap();
        }
        let text = std::fs::read_to_string(sink.path()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[2], "{\"event\":\"tick\",\"i\":2}");
        std::fs::remove_file(&path).ok();
    }
}
