//! Process-wide telemetry: merging per-subsystem registry snapshots into
//! one SLO-grade view.
//!
//! The workspace's registry convention (DESIGN.md) splits metrics between
//! owned registries (one per server / trainer) and the ambient
//! [`crate::Registry::global`]. A [`TelemetrySnapshot`] folds any number of
//! [`Snapshot`]s back together: counters and gauges merge by summing
//! same-named entries, histograms merge bucket-wise (when their bucket
//! ladders agree) and are then condensed to [`SloReport`]s — the form a
//! dashboard or the serving protocol's `Telemetry` op actually wants.

use std::collections::BTreeMap;

use crate::metrics::{HistogramSnapshot, SloReport};
use crate::registry::Snapshot;

/// Merged, name-sorted view over one or more registry snapshots.
///
/// Counters and gauges with the same name are summed. Histograms with the
/// same name and identical bucket bounds are merged bucket-wise before
/// their [`SloReport`] is computed; on a bounds mismatch (a programmer
/// error — same name, different ladder) the snapshot with more
/// observations wins and the other is dropped.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetrySnapshot {
    /// `(name, value)` per merged counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` per merged gauge.
    pub gauges: Vec<(String, i64)>,
    /// `(name, report)` per merged histogram.
    pub slos: Vec<(String, SloReport)>,
}

/// Bucket-wise merge of two same-shape histogram snapshots.
///
/// Returns `None` when the bucket bounds differ (the states are not
/// addable). `max` takes the larger of the two; everything else sums.
pub fn merge_histograms(a: &HistogramSnapshot, b: &HistogramSnapshot) -> Option<HistogramSnapshot> {
    if a.bounds != b.bounds {
        return None;
    }
    Some(HistogramSnapshot {
        bounds: a.bounds.clone(),
        buckets: a
            .buckets
            .iter()
            .zip(&b.buckets)
            .map(|(&x, &y)| x + y)
            .collect(),
        overflow: a.overflow + b.overflow,
        count: a.count + b.count,
        sum: a.sum + b.sum,
        max: a.max.max(b.max),
    })
}

impl TelemetrySnapshot {
    /// Merges `snapshots` (owned registries first, then the global one, by
    /// convention — order only matters for mismatched-bounds tie-breaks).
    pub fn merge(snapshots: &[Snapshot]) -> Self {
        let mut counters: BTreeMap<String, u64> = BTreeMap::new();
        let mut gauges: BTreeMap<String, i64> = BTreeMap::new();
        let mut histograms: BTreeMap<String, HistogramSnapshot> = BTreeMap::new();
        for snap in snapshots {
            for (name, v) in &snap.counters {
                *counters.entry(name.clone()).or_insert(0) += v;
            }
            for (name, v) in &snap.gauges {
                *gauges.entry(name.clone()).or_insert(0) += v;
            }
            for (name, h) in &snap.histograms {
                match histograms.get_mut(name) {
                    None => {
                        histograms.insert(name.clone(), h.clone());
                    }
                    Some(existing) => match merge_histograms(existing, h) {
                        Some(merged) => *existing = merged,
                        None if h.count > existing.count => *existing = h.clone(),
                        None => {}
                    },
                }
            }
        }
        Self {
            counters: counters.into_iter().collect(),
            gauges: gauges.into_iter().collect(),
            slos: histograms
                .into_iter()
                .map(|(name, h)| (name, h.slo_report()))
                .collect(),
        }
    }

    /// Value of a merged counter by name, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Value of a merged gauge by name, if present.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// SLO report of a merged histogram by name, if present.
    pub fn slo(&self, name: &str) -> Option<&SloReport> {
        self.slos.iter().find(|(n, _)| n == name).map(|(_, r)| r)
    }

    /// Renders the snapshot as one JSON object:
    /// `{"counters":{...},"gauges":{...},"slo":{"name":{"p50":…},…}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push_str("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            crate::json::push_string(&mut out, name);
            out.push(':');
            out.push_str(&v.to_string());
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            crate::json::push_string(&mut out, name);
            out.push(':');
            out.push_str(&v.to_string());
        }
        out.push_str("},\"slo\":{");
        for (i, (name, r)) in self.slos.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            crate::json::push_string(&mut out, name);
            out.push(':');
            r.push_json(&mut out);
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    #[test]
    fn merge_sums_counters_and_gauges_across_registries() {
        let a = Registry::new();
        let b = Registry::new();
        a.counter("requests_total").add(3);
        b.counter("requests_total").add(4);
        a.gauge("depth").set(2);
        b.gauge("depth").set(5);
        b.counter("only_b_total").add(1);
        let t = TelemetrySnapshot::merge(&[a.snapshot(), b.snapshot()]);
        assert_eq!(t.counter("requests_total"), Some(7));
        assert_eq!(t.gauge("depth"), Some(7));
        assert_eq!(t.counter("only_b_total"), Some(1));
        assert_eq!(t.counter("absent"), None);
    }

    #[test]
    fn merge_adds_histograms_bucket_wise_and_reports_slo() {
        let a = Registry::new();
        let b = Registry::new();
        let bounds = [10.0, 100.0];
        for v in [5.0, 50.0] {
            a.histogram("lat_us", &bounds).observe(v);
        }
        for v in [7.0, 90.0, 95.0] {
            b.histogram("lat_us", &bounds).observe(v);
        }
        let t = TelemetrySnapshot::merge(&[a.snapshot(), b.snapshot()]);
        let r = t.slo("lat_us").expect("merged slo");
        assert_eq!(r.count, 5);
        assert_eq!(r.max, 95.0);
        assert!(r.p50 <= r.p99);
    }

    #[test]
    fn mismatched_bucket_bounds_keep_the_larger_count() {
        let a = Registry::new();
        let b = Registry::new();
        a.histogram("h", &[1.0]).observe(0.5);
        let bh = b.histogram("h", &[1.0, 2.0]);
        bh.observe(0.5);
        bh.observe(1.5);
        let t = TelemetrySnapshot::merge(&[a.snapshot(), b.snapshot()]);
        assert_eq!(t.slo("h").unwrap().count, 2, "larger-count snapshot wins");
    }

    #[test]
    fn json_shape_is_stable_and_empty_safe() {
        assert_eq!(
            TelemetrySnapshot::merge(&[]).to_json(),
            "{\"counters\":{},\"gauges\":{},\"slo\":{}}"
        );
        let reg = Registry::new();
        reg.counter("a_total").inc();
        reg.histogram("h_us", &[10.0]).observe(2.0);
        let json = TelemetrySnapshot::merge(&[reg.snapshot()]).to_json();
        assert!(json.contains("\"a_total\":1"));
        assert!(json.contains("\"h_us\":{\"p50\":"));
        assert!(json.contains("\"count\":1}"));
    }
}
