//! Scoped wall-clock timing.

use std::time::Instant;

use crate::metrics::{Counter, Histogram};

/// A started wall clock. Thin wrapper over [`Instant`] with the
/// conversions the metric layers need.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Self {
        Self {
            start: Instant::now(),
        }
    }

    /// Elapsed seconds.
    pub fn elapsed_secs(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Elapsed whole nanoseconds, saturating at `u64::MAX`.
    pub fn elapsed_nanos(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Elapsed whole microseconds, saturating at `u64::MAX`.
    pub fn elapsed_micros(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// Adds the elapsed nanoseconds to a counter (the accumulate-then-read
    /// pattern used for phase timings shared across worker threads).
    pub fn record_nanos(&self, counter: &Counter) {
        counter.add(self.elapsed_nanos());
    }
}

/// Records a duration into a histogram when dropped.
///
/// ```
/// # use widen_obs::{Histogram, ScopedTimer, Unit};
/// let hist = Histogram::new(&[0.1, 1.0]);
/// {
///     let _t = ScopedTimer::new(&hist, Unit::Seconds);
///     // ... timed work ...
/// } // observation recorded here
/// assert_eq!(hist.snapshot().count, 1);
/// ```
pub struct ScopedTimer<'a> {
    hist: &'a Histogram,
    unit: Unit,
    watch: Stopwatch,
}

/// Which unit a [`ScopedTimer`] records in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unit {
    /// Seconds as f64.
    Seconds,
    /// Whole microseconds.
    Micros,
}

impl<'a> ScopedTimer<'a> {
    /// Starts a timer that reports into `hist` on drop.
    pub fn new(hist: &'a Histogram, unit: Unit) -> Self {
        Self {
            hist,
            unit,
            watch: Stopwatch::start(),
        }
    }
}

impl Drop for ScopedTimer<'_> {
    fn drop(&mut self) {
        let v = match self.unit {
            Unit::Seconds => self.watch.elapsed_secs(),
            Unit::Micros => self.watch.elapsed_micros() as f64,
        };
        self.hist.observe(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_measures_something() {
        let w = Stopwatch::start();
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(w.elapsed_secs() >= 0.002);
        assert!(w.elapsed_nanos() >= 2_000_000);
        assert!(w.elapsed_micros() >= 2_000);
    }

    #[test]
    fn stopwatch_accumulates_into_counter() {
        let c = Counter::new();
        let w = Stopwatch::start();
        std::thread::sleep(std::time::Duration::from_millis(1));
        w.record_nanos(&c);
        w.record_nanos(&c);
        assert!(c.get() >= 2_000_000);
    }

    #[test]
    fn scoped_timer_records_on_drop() {
        let hist = Histogram::new(&[1_000.0, 1_000_000.0]);
        {
            let _t = ScopedTimer::new(&hist, Unit::Micros);
            std::thread::sleep(std::time::Duration::from_micros(100));
        }
        let s = hist.snapshot();
        assert_eq!(s.count, 1);
        assert!(s.sum >= 100.0);
    }
}
