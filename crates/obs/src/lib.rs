//! # widen-obs
//!
//! The observability layer of the WIDEN stack: every runtime signal the
//! trainer, the serving layer, and the samplers expose flows through the
//! primitives in this crate.
//!
//! * [`Counter`] / [`Gauge`] — lock-free atomic instruments for totals and
//!   levels (requests served, queue depth).
//! * [`Histogram`] — fixed-bucket distribution with atomic buckets, count
//!   and sum (fused batch sizes, coalescing waits, sampled set sizes).
//! * [`Stopwatch`] / [`ScopedTimer`] — wall-clock phase timing; scoped
//!   timers record into a histogram on drop.
//! * [`Registry`] — named get-or-create instrument store with
//!   deterministic, name-sorted [`Snapshot`]s that render to JSON (this is
//!   what the serving protocol's `Stats` op returns).
//! * [`JsonlSink`] / [`Event`] — structured trace channel: one event per
//!   line of JSON, used by `--metrics-out` training runs.
//! * [`Tracer`] / [`Span`] — hierarchical span tracing with RAII guards,
//!   parent links, and JSONL / Chrome `trace_event` exporters (open the
//!   latter in Perfetto); zero-cost when disabled.
//! * [`SloReport`] / [`TelemetrySnapshot`] — percentile-grade summaries:
//!   interpolated histogram quantiles (p50/p90/p99/max) and a process-wide
//!   merge of multiple registries into one JSON view (the serving
//!   protocol's `Telemetry` op).
//! * [`FlightRecorder`] — always-on lock-sharded ring of recent request
//!   timelines ([`FlightRecord`]s), dumped as a JSONL post-mortem when an
//!   anomaly (shed, deadline drop, slow request) fires.
//!
//! Two registry scopes exist by convention: subsystems with a clear owner
//! (one server, one trainer) hold their **own** [`Registry`] so concurrent
//! instances — and tests — never share counters, while ambient library
//! layers (sampling) record into [`Registry::global`]. Metric names follow
//! `<layer>_<subject>[_<unit>][_total]`; see DESIGN.md for the full
//! scheme.
//!
//! The crate has **no dependencies** (std only), in keeping with the
//! workspace's vendored-stub policy: anything may depend on it, including
//! the lowest layers, without enlarging the offline dependency surface.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod json;
pub mod metrics;
pub mod recorder;
pub mod registry;
pub mod sink;
pub mod telemetry;
pub mod timer;
pub mod trace;

pub use metrics::{buckets, Counter, Gauge, Histogram, HistogramSnapshot, SloReport};
pub use recorder::{FlightRecord, FlightRecorder, PhaseStamp};
pub use registry::{Registry, Snapshot};
pub use sink::{Event, JsonlSink, Value};
pub use telemetry::TelemetrySnapshot;
pub use timer::{ScopedTimer, Stopwatch, Unit};
pub use trace::{
    chrome_trace_json, render_tree, span_tree, validate_chrome_trace, write_chrome_trace, Span,
    SpanId, SpanRecord, TraceId, Tracer,
};
