//! Property tests of the Chrome trace exporter: whatever spans a tracer
//! records — hostile names full of quotes, backslashes and control
//! characters, arbitrary timestamps, deep parent chains — the exported
//! JSON must satisfy the strict [`validate_chrome_trace`] parser (one
//! complete `X` event per span, finite numeric fields, non-decreasing
//! timestamps) and never panic.

use proptest::prelude::*;
use widen_obs::{chrome_trace_json, span_tree, validate_chrome_trace, Tracer};

/// Maps raw bytes onto a palette biased toward JSON-hostile characters.
fn name_from(codes: &[u8]) -> String {
    const PALETTE: [char; 16] = [
        '"', '\\', '\n', '\t', '\r', '\u{0}', '\u{1f}', '{', '}', '[', 'é', '✓', 'a', '.', ' ', '/',
    ];
    codes
        .iter()
        .map(|&c| PALETTE[c as usize % PALETTE.len()])
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn exported_chrome_trace_always_validates(
        seed in any::<u64>(),
        spans in prop::collection::vec(
            (
                prop::collection::vec(any::<u8>(), 0..24), // name bytes
                any::<u32>(),                              // start offset
                any::<u32>(),                              // duration
                any::<bool>(),                             // chain to previous span?
            ),
            0..40,
        ),
    ) {
        let tracer = Tracer::new(seed);
        let trace = tracer.start_trace();
        let mut prev = None;
        for (codes, start, dur, chain) in &spans {
            let parent = if *chain { prev } else { None };
            prev = Some(tracer.record_complete(
                trace,
                parent,
                &name_from(codes),
                u64::from(*start),
                u64::from(*dur),
            ));
        }
        let records = tracer.drain();
        prop_assert_eq!(records.len(), spans.len());

        let json = chrome_trace_json(&records);
        let events = validate_chrome_trace(&json);
        prop_assert!(events.is_ok(), "rejected: {:?}", events);
        prop_assert_eq!(events.unwrap(), spans.len());

        // The tree reconstruction never loses spans: every record appears
        // exactly once across the forest.
        let forest = span_tree(&records, trace);
        fn count(nodes: &[widen_obs::trace::SpanNode]) -> usize {
            nodes.iter().map(|n| 1 + count(&n.children)).sum()
        }
        prop_assert_eq!(count(&forest), spans.len());
    }

    #[test]
    fn validator_never_panics_on_mutated_documents(
        seed in any::<u64>(),
        flips in prop::collection::vec((any::<u32>(), any::<u8>()), 1..8),
    ) {
        let tracer = Tracer::new(seed);
        let trace = tracer.start_trace();
        tracer.record_complete(trace, None, "core.trainer.epoch", 5, 100);
        tracer.record_complete(trace, None, "weird \"name\"\\", 10, 20);
        let mut json = chrome_trace_json(&tracer.drain()).into_bytes();
        for (pos, byte) in &flips {
            let i = *pos as usize % json.len();
            json[i] = *byte;
        }
        // Outcome may be Ok (benign flip) or Err — it must simply not panic.
        if let Ok(text) = String::from_utf8(json) {
            let _ = validate_chrome_trace(&text);
        }
    }
}
