//! HAN (Wang et al., WWW 2019): Heterogeneous Attention Network over
//! meta-path-induced adjacency matrices with semantic-level attention.
//!
//! Meta paths are derived automatically from the schema: for every edge
//! type `e`, the two-hop composition `Â_e · Â_e` connects nodes of the
//! labelled type through their shared intermediate (e.g. paper–author–paper
//! → PAP, paper–subject–paper → PSP on ACM), which is exactly the symmetric
//! `L–T–L` family HAN uses. Per-meta-path node aggregation uses a
//! GCN-style propagation with path-specific projections (the common
//! efficient simplification of HAN's node-level attention); the
//! semantic-level attention over meta paths follows the original design:
//! `β = softmax_p(q · tanh(mean(H_p W_s + b))ᵀ)`.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;
use widen_graph::{EdgeTypeId, HeteroGraph, NodeId};
use widen_tensor::{
    xavier_uniform, zeros_init, Adam, CsrMatrix, Optimizer, ParamId, ParamStore, Tape, Tensor, Var,
};

use crate::common::{gather_labels, BaselineConfig, NodeClassifier};
use crate::gcn::extract_grads;

/// HAN with auto-derived symmetric meta paths.
pub struct Han {
    config: BaselineConfig,
    params: ParamStore,
    ids: Option<HanIds>,
    num_paths: usize,
}

#[derive(Clone)]
struct HanIds {
    /// Path-specific feature projections.
    path_w: Vec<ParamId>,
    /// Semantic attention projection `W_s` (`h × h`).
    sem_w: ParamId,
    /// Semantic attention bias (`1 × h`).
    sem_b: ParamId,
    /// Semantic attention query `q` (`1 × h`).
    sem_q: ParamId,
    /// Classifier.
    clf: ParamId,
}

impl Han {
    /// An untrained HAN.
    pub fn new(config: BaselineConfig) -> Self {
        Self {
            config,
            params: ParamStore::new(),
            ids: None,
            num_paths: 0,
        }
    }

    /// Meta-path adjacencies `Â_e²` (row-normalised, one per edge type).
    fn meta_path_adjacencies(graph: &HeteroGraph) -> Vec<Arc<CsrMatrix>> {
        (0..graph.num_edge_types())
            .map(|e| {
                let a = graph.adjacency_of_type(EdgeTypeId(e as u16));
                Arc::new(a.spspmm(&a).gcn_normalized())
            })
            .collect()
    }

    fn init(&mut self, graph: &HeteroGraph) {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let d0 = graph.feature_dim();
        let h = self.config.hidden;
        let c = graph.num_classes();
        self.num_paths = graph.num_edge_types();
        self.params = ParamStore::new();
        let path_w = (0..self.num_paths)
            .map(|p| {
                self.params
                    .register(format!("path_w_{p}"), xavier_uniform(d0, h, &mut rng))
            })
            .collect();
        self.ids = Some(HanIds {
            path_w,
            sem_w: self
                .params
                .register("sem_w", xavier_uniform(h, h, &mut rng)),
            sem_b: self.params.register("sem_b", zeros_init(1, h)),
            sem_q: self
                .params
                .register("sem_q", xavier_uniform(1, h, &mut rng)),
            clf: self.params.register("clf", xavier_uniform(h, c, &mut rng)),
        });
    }

    fn forward(
        &self,
        tape: &mut Tape,
        graph: &HeteroGraph,
        metas: &[Arc<CsrMatrix>],
    ) -> (Var, Var, Vec<(ParamId, Var)>) {
        let ids = self.ids.clone().expect("fitted");
        let x = tape.leaf(graph.features().clone());
        let mut tracked: Vec<(ParamId, Var)> = Vec::new();

        // Per-meta-path node aggregation.
        let mut path_reprs = Vec::with_capacity(metas.len());
        for (p, meta) in metas.iter().enumerate() {
            let w = tape.leaf(self.params.get(ids.path_w[p]).clone());
            tracked.push((ids.path_w[p], w));
            let xw = tape.matmul(x, w);
            let prop = tape.spmm(meta.clone(), xw);
            path_reprs.push(tape.relu(prop)); // (n, h)
        }

        // Semantic attention (one weight per meta path).
        let sem_w = tape.leaf(self.params.get(ids.sem_w).clone());
        let sem_b = tape.leaf(self.params.get(ids.sem_b).clone());
        let sem_q = tape.leaf(self.params.get(ids.sem_q).clone());
        tracked.push((ids.sem_w, sem_w));
        tracked.push((ids.sem_b, sem_b));
        tracked.push((ids.sem_q, sem_q));

        let mut scores = Vec::with_capacity(metas.len());
        for &h_p in &path_reprs {
            let proj = tape.matmul(h_p, sem_w);
            let biased = tape.add_row_broadcast(proj, sem_b);
            let act = tape.tanh(biased);
            let mean = tape.mean_rows(act); // (1, h)
            let score = tape.matmul_nt(mean, sem_q); // (1, 1)
            scores.push(score);
        }
        let score_col = tape.vstack(&scores); // (P, 1)
        let score_row = tape.transpose(score_col); // (1, P)
        let beta_row = tape.softmax_rows(score_row);
        let beta_col = tape.transpose(beta_row); // (P, 1)

        let mut fused: Option<Var> = None;
        for (p, &h_p) in path_reprs.iter().enumerate() {
            let beta_p = tape.select_rows(beta_col, &[p]);
            let gated = tape.mul_scalar_var(h_p, beta_p);
            fused = Some(match fused {
                Some(acc) => tape.add(acc, gated),
                None => gated,
            });
        }
        let hidden = fused.expect("at least one meta path");

        let clf = tape.leaf(self.params.get(ids.clf).clone());
        tracked.push((ids.clf, clf));
        let logits = tape.matmul(hidden, clf);
        (hidden, logits, tracked)
    }
}

impl NodeClassifier for Han {
    fn name(&self) -> &'static str {
        "HAN"
    }

    fn fit(&mut self, graph: &HeteroGraph, train: &[NodeId]) {
        self.init(graph);
        let metas = Self::meta_path_adjacencies(graph);
        let labels = gather_labels(graph, train);
        let train_rows: Vec<usize> = train.iter().map(|&v| v as usize).collect();
        let mut opt = Adam::with_lr(self.config.learning_rate, self.config.weight_decay);
        for _ in 0..self.config.epochs {
            let mut tape = Tape::new();
            let (_, logits, tracked) = self.forward(&mut tape, graph, &metas);
            let picked = tape.select_rows(logits, &train_rows);
            let loss = tape.softmax_cross_entropy(picked, &labels);
            tape.backward(loss);
            let grads = extract_grads(&tape, &self.params, &tracked);
            opt.step(&mut self.params, &grads);
        }
    }

    fn predict(&self, graph: &HeteroGraph, nodes: &[NodeId]) -> Vec<usize> {
        let metas = Self::meta_path_adjacencies(graph);
        let mut tape = Tape::new();
        let (_, logits, _) = self.forward(&mut tape, graph, &metas);
        let l = tape.value(logits);
        nodes.iter().map(|&v| l.argmax_row(v as usize)).collect()
    }

    fn embed(&self, graph: &HeteroGraph, nodes: &[NodeId]) -> Tensor {
        let metas = Self::meta_path_adjacencies(graph);
        let mut tape = Tape::new();
        let (hidden, _, _) = self.forward(&mut tape, graph, &metas);
        let rows: Vec<usize> = nodes.iter().map(|&v| v as usize).collect();
        tape.value(hidden).select_rows(&rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use widen_data::{acm_like, Scale};
    use widen_eval::micro_f1;

    #[test]
    fn han_learns_smoke_acm() {
        let d = acm_like(Scale::Smoke, 1);
        let cfg = BaselineConfig {
            epochs: 60,
            learning_rate: 1e-2,
            ..Default::default()
        };
        let mut model = Han::new(cfg);
        model.fit(&d.graph, &d.transductive.train);
        let preds = model.predict(&d.graph, &d.transductive.test);
        let truth = gather_labels(&d.graph, &d.transductive.test);
        let f1 = micro_f1(&truth, &preds);
        assert!(f1 > 0.6, "HAN micro-F1 = {f1}");
    }

    #[test]
    fn meta_paths_connect_same_type_nodes() {
        let d = acm_like(Scale::Smoke, 2);
        let metas = Han::meta_path_adjacencies(&d.graph);
        assert_eq!(metas.len(), d.graph.num_edge_types());
        // PAP-style adjacency: papers reached from papers. Pick a labelled
        // (paper) node with entries and verify two-hop endpoints are papers
        // too (for paper-author and paper-subject paths both endpoints of
        // the squared matrix belonging to papers hold by construction —
        // spot-check that *some* paper-paper connections exist).
        let paper_nodes = d.graph.labeled_nodes();
        let pap = &metas[0];
        let mut hits = 0;
        for &p in paper_nodes.iter().take(50) {
            for (q, _) in pap.row_entries(p as usize) {
                if d.graph.label(q as u32).is_some() && q != p as usize {
                    hits += 1;
                }
            }
        }
        assert!(hits > 0, "meta path should connect distinct papers");
    }

    #[test]
    fn semantic_attention_trains() {
        let d = acm_like(Scale::Smoke, 3);
        let cfg = BaselineConfig {
            epochs: 8,
            learning_rate: 1e-2,
            ..Default::default()
        };
        let mut model = Han::new(cfg);
        model.fit(&d.graph, &d.transductive.train);
        let ids = model.ids.clone().unwrap();
        assert!(model.params.get(ids.sem_q).frobenius_norm() > 0.0);
        let emb = model.embed(&d.graph, &d.transductive.test[..3]);
        assert_eq!(emb.shape(), (3, 32));
    }
}
