//! Shared baseline infrastructure: the classifier trait, configuration and
//! small training helpers.

use widen_graph::{HeteroGraph, NodeId};
use widen_tensor::Tensor;

/// Uniform interface over all comparison methods.
///
/// Usage contract: call [`NodeClassifier::fit`] once, then
/// [`NodeClassifier::predict`] / [`NodeClassifier::embed`] any number of
/// times. For the inductive protocol, `fit` receives the reduced training
/// graph and `predict` the full graph — node ids refer to whichever graph is
/// passed.
pub trait NodeClassifier: Send {
    /// Display name (paper's table row label).
    fn name(&self) -> &'static str;

    /// Trains on `graph` supervised by the labelled `train` nodes.
    fn fit(&mut self, graph: &HeteroGraph, train: &[NodeId]);

    /// Predicts class indices for `nodes` of `graph`.
    fn predict(&self, graph: &HeteroGraph, nodes: &[NodeId]) -> Vec<usize>;

    /// Produces node embeddings (`len × d`) for `nodes` of `graph`.
    fn embed(&self, graph: &HeteroGraph, nodes: &[NodeId]) -> Tensor;

    /// Whether the method can embed nodes unseen during training. Defaults
    /// to `true`; Node2Vec returns `false` (§4.6 excludes it).
    fn supports_inductive(&self) -> bool {
        true
    }
}

/// Hyperparameters shared across baselines. Each method interprets the
/// fields it needs; per-method peculiarities (walk lengths, sample sizes)
/// have sensible fixed defaults tuned on the validation splits.
#[derive(Clone, Debug)]
pub struct BaselineConfig {
    /// Hidden / embedding dimensionality.
    pub hidden: usize,
    /// Learning rate.
    pub learning_rate: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
    /// Training epochs.
    pub epochs: usize,
    /// Neighbourhood sample size (SAGE / GAT / HGT).
    pub sample_size: usize,
    /// Mini-batch size for sampled methods.
    pub batch_size: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        Self {
            hidden: 32,
            learning_rate: 5e-3,
            weight_decay: 1e-4,
            epochs: 30,
            sample_size: 8,
            batch_size: 64,
            seed: 0,
        }
    }
}

impl BaselineConfig {
    /// Returns `self` with another seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Gathers raw features of `nodes` into a `(len, d₀)` tensor.
pub fn gather_features(graph: &HeteroGraph, nodes: &[NodeId]) -> Tensor {
    let mut out = Tensor::zeros(nodes.len(), graph.feature_dim());
    for (i, &v) in nodes.iter().enumerate() {
        out.set_row(i, graph.feature_row(v));
    }
    out
}

/// Integer labels of `nodes`.
///
/// # Panics
/// Panics if any node is unlabelled.
pub fn gather_labels(graph: &HeteroGraph, nodes: &[NodeId]) -> Vec<usize> {
    nodes
        .iter()
        .map(|&v| graph.label(v).expect("labelled node required") as usize)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use widen_data::{acm_like, Scale};

    #[test]
    fn config_builder() {
        let c = BaselineConfig::default().with_seed(5);
        assert_eq!(c.seed, 5);
        assert!(c.hidden > 0);
    }

    #[test]
    fn gather_helpers() {
        let d = acm_like(Scale::Smoke, 1);
        let nodes = &d.transductive.train[..4];
        let x = gather_features(&d.graph, nodes);
        assert_eq!(x.shape(), (4, d.graph.feature_dim()));
        let y = gather_labels(&d.graph, nodes);
        assert_eq!(y.len(), 4);
        assert!(y.iter().all(|&l| l < 3));
    }

    #[test]
    #[should_panic(expected = "labelled node required")]
    fn gather_labels_rejects_unlabelled() {
        let d = acm_like(Scale::Smoke, 1);
        let unlabeled = (0..d.graph.num_nodes() as u32)
            .find(|&v| d.graph.label(v).is_none())
            .unwrap();
        let _ = gather_labels(&d.graph, &[unlabeled]);
    }
}
