//! GTN (Yun et al., NeurIPS 2019): Graph Transformer Networks learn soft
//! selections of edge types whose composition forms useful meta-paths,
//! followed by graph convolution on the learned meta-path graph.
//!
//! This implementation keeps GTN's defining mechanism — differentiable
//! per-channel softmax over the typed adjacency stack `{A₁ … A_E, I}` and
//! two-hop composition `Q₁·Q₂` — while factoring the composition through
//! the feature matrix (`Q₁(Q₂X)`), which avoids materialising the dense
//! meta-path adjacency. As in the paper, GTN is a full-graph method (its
//! CPU cost is why Table 2 omits it on Yelp).

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;
use widen_graph::{EdgeTypeId, HeteroGraph, NodeId};
use widen_tensor::{
    xavier_uniform, Adam, CsrMatrix, Optimizer, ParamId, ParamStore, Tape, Tensor, Var,
};

use crate::common::{gather_labels, BaselineConfig, NodeClassifier};
use crate::gcn::extract_grads;

/// One-layer (two-channel) GTN with a GCN head.
pub struct Gtn {
    config: BaselineConfig,
    params: ParamStore,
    ids: Option<GtnIds>,
}

#[derive(Clone, Copy)]
struct GtnIds {
    /// Channel-1 edge-type selection logits (`1 × (E+1)`).
    sel1: ParamId,
    /// Channel-2 edge-type selection logits.
    sel2: ParamId,
    w1: ParamId,
    w2: ParamId,
}

struct GtnVars {
    sel1: Var,
    sel2: Var,
    w1: Var,
    w2: Var,
}

impl Gtn {
    /// An untrained GTN.
    pub fn new(config: BaselineConfig) -> Self {
        Self {
            config,
            params: ParamStore::new(),
            ids: None,
        }
    }

    fn init(&mut self, graph: &HeteroGraph) {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let d0 = graph.feature_dim();
        let h = self.config.hidden;
        let c = graph.num_classes();
        let channels = graph.num_edge_types() + 1; // typed adjacencies + I
        self.params = ParamStore::new();
        self.ids = Some(GtnIds {
            sel1: self.params.register("sel1", Tensor::zeros(1, channels)),
            sel2: self.params.register("sel2", Tensor::zeros(1, channels)),
            w1: self.params.register("w1", xavier_uniform(d0, h, &mut rng)),
            w2: self.params.register("w2", xavier_uniform(h, c, &mut rng)),
        });
    }

    /// Row-normalised typed adjacency stack `{Â₁ … Â_E, I}`.
    fn adjacency_stack(graph: &HeteroGraph) -> Vec<Arc<CsrMatrix>> {
        let mut stack: Vec<Arc<CsrMatrix>> = (0..graph.num_edge_types())
            .map(|e| {
                Arc::new(
                    graph
                        .adjacency_of_type(EdgeTypeId(e as u16))
                        .row_normalized(),
                )
            })
            .collect();
        stack.push(Arc::new(CsrMatrix::identity(graph.num_nodes())));
        stack
    }

    /// Soft-selected propagation: `Σ_e softmax(sel)_e · (Â_e · X)`.
    fn soft_propagate(tape: &mut Tape, stack: &[Arc<CsrMatrix>], sel: Var, x: Var) -> Var {
        let sm = tape.softmax_rows(sel); // (1, E+1)
        let col = tape.transpose(sm); // (E+1, 1)
        let mut acc: Option<Var> = None;
        for (e, adj) in stack.iter().enumerate() {
            let prop = tape.spmm(adj.clone(), x);
            let weight = tape.select_rows(col, &[e]);
            let gated = tape.mul_scalar_var(prop, weight);
            acc = Some(match acc {
                Some(a) => tape.add(a, gated),
                None => gated,
            });
        }
        acc.expect("non-empty adjacency stack")
    }

    fn forward(
        &self,
        tape: &mut Tape,
        graph: &HeteroGraph,
        stack: &[Arc<CsrMatrix>],
    ) -> (Var, Var, GtnVars) {
        let ids = self.ids.expect("fitted");
        let vars = GtnVars {
            sel1: tape.leaf(self.params.get(ids.sel1).clone()),
            sel2: tape.leaf(self.params.get(ids.sel2).clone()),
            w1: tape.leaf(self.params.get(ids.w1).clone()),
            w2: tape.leaf(self.params.get(ids.w2).clone()),
        };
        let x = tape.leaf(graph.features().clone());
        // Meta-path propagation A_meta·X = Q₁·(Q₂·X).
        let y = Self::soft_propagate(tape, stack, vars.sel2, x);
        let z = Self::soft_propagate(tape, stack, vars.sel1, y);
        let zw = tape.matmul(z, vars.w1);
        let hidden = tape.relu(zw);
        let logits = tape.matmul(hidden, vars.w2);
        (hidden, logits, vars)
    }
}

impl NodeClassifier for Gtn {
    fn name(&self) -> &'static str {
        "GTN"
    }

    fn fit(&mut self, graph: &HeteroGraph, train: &[NodeId]) {
        self.init(graph);
        let ids = self.ids.unwrap();
        let stack = Self::adjacency_stack(graph);
        let labels = gather_labels(graph, train);
        let train_rows: Vec<usize> = train.iter().map(|&v| v as usize).collect();
        let mut opt = Adam::with_lr(self.config.learning_rate, self.config.weight_decay);
        for _ in 0..self.config.epochs {
            let mut tape = Tape::new();
            let (_, logits, vars) = self.forward(&mut tape, graph, &stack);
            let picked = tape.select_rows(logits, &train_rows);
            let loss = tape.softmax_cross_entropy(picked, &labels);
            tape.backward(loss);
            let grads = extract_grads(
                &tape,
                &self.params,
                &[
                    (ids.sel1, vars.sel1),
                    (ids.sel2, vars.sel2),
                    (ids.w1, vars.w1),
                    (ids.w2, vars.w2),
                ],
            );
            opt.step(&mut self.params, &grads);
        }
    }

    fn predict(&self, graph: &HeteroGraph, nodes: &[NodeId]) -> Vec<usize> {
        let stack = Self::adjacency_stack(graph);
        let mut tape = Tape::new();
        let (_, logits, _) = self.forward(&mut tape, graph, &stack);
        let l = tape.value(logits);
        nodes.iter().map(|&v| l.argmax_row(v as usize)).collect()
    }

    fn embed(&self, graph: &HeteroGraph, nodes: &[NodeId]) -> Tensor {
        let stack = Self::adjacency_stack(graph);
        let mut tape = Tape::new();
        let (hidden, _, _) = self.forward(&mut tape, graph, &stack);
        let rows: Vec<usize> = nodes.iter().map(|&v| v as usize).collect();
        tape.value(hidden).select_rows(&rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use widen_data::{acm_like, Scale};
    use widen_eval::micro_f1;

    #[test]
    fn gtn_learns_smoke_acm() {
        let d = acm_like(Scale::Smoke, 1);
        let cfg = BaselineConfig {
            epochs: 60,
            learning_rate: 1e-2,
            ..Default::default()
        };
        let mut model = Gtn::new(cfg);
        model.fit(&d.graph, &d.transductive.train);
        let preds = model.predict(&d.graph, &d.transductive.test);
        let truth = gather_labels(&d.graph, &d.transductive.test);
        let f1 = micro_f1(&truth, &preds);
        assert!(f1 > 0.55, "GTN micro-F1 = {f1}");
    }

    #[test]
    fn selection_weights_receive_gradient() {
        let d = acm_like(Scale::Smoke, 2);
        let cfg = BaselineConfig {
            epochs: 10,
            learning_rate: 1e-2,
            ..Default::default()
        };
        let mut model = Gtn::new(cfg);
        model.fit(&d.graph, &d.transductive.train);
        let ids = model.ids.unwrap();
        // Trained selection logits should have moved off their zero init.
        let sel1 = model.params.get(ids.sel1);
        assert!(
            sel1.frobenius_norm() > 0.0,
            "edge-type selection never trained"
        );
    }

    #[test]
    fn adjacency_stack_has_identity_channel() {
        let d = acm_like(Scale::Smoke, 3);
        let stack = Gtn::adjacency_stack(&d.graph);
        assert_eq!(stack.len(), d.graph.num_edge_types() + 1);
        let id = stack.last().unwrap();
        assert_eq!(id.nnz(), d.graph.num_nodes());
    }
}
