//! GraphSAGE (Hamilton, Ying & Leskovec, NIPS 2017): inductive
//! sample-and-aggregate representation learning with mean aggregators.
//!
//! Two layers: `h¹_u = ReLU([x_u ; mean x_{N(u)}] W₁)` for the target and
//! its sampled neighbours, then `h²_v = ReLU([h¹_v ; mean h¹_{N(v)}] W₂)`,
//! L2-normalised, followed by a linear classifier. Neighbourhoods are
//! re-sampled every epoch (and at prediction time), which is what makes the
//! method inductive.

use rand::rngs::StdRng;
use rand::SeedableRng;
use widen_graph::{HeteroGraph, NodeId};
use widen_sampling::{hash_seed, sample_wide};
use widen_tensor::{xavier_uniform, Adam, Optimizer, ParamId, ParamStore, Tape, Tensor, Var};

use crate::common::{gather_labels, BaselineConfig, NodeClassifier};
use crate::gcn::extract_grads;

/// Two-layer mean-aggregator GraphSAGE.
pub struct GraphSage {
    config: BaselineConfig,
    params: ParamStore,
    ids: Option<(ParamId, ParamId, ParamId)>, // w1, w2, classifier
}

impl GraphSage {
    /// An untrained GraphSAGE.
    pub fn new(config: BaselineConfig) -> Self {
        Self {
            config,
            params: ParamStore::new(),
            ids: None,
        }
    }

    fn init(&mut self, graph: &HeteroGraph) {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let d0 = graph.feature_dim();
        let h = self.config.hidden;
        let c = graph.num_classes();
        self.params = ParamStore::new();
        let w1 = self
            .params
            .register("w1", xavier_uniform(2 * d0, h, &mut rng));
        let w2 = self
            .params
            .register("w2", xavier_uniform(2 * h, h, &mut rng));
        let clf = self.params.register("clf", xavier_uniform(h, c, &mut rng));
        self.ids = Some((w1, w2, clf));
    }

    /// Mean of a node's sampled neighbours' raw features (zero vector for
    /// isolated nodes).
    fn neighbor_feature_mean(
        &self,
        graph: &HeteroGraph,
        node: NodeId,
        rng: &mut StdRng,
    ) -> Vec<f32> {
        let sampled = sample_wide(graph, node, self.config.sample_size, rng);
        let d0 = graph.feature_dim();
        let mut mean = vec![0.0f32; d0];
        if sampled.is_empty() {
            return mean;
        }
        for entry in &sampled.entries {
            for (m, &x) in mean.iter_mut().zip(graph.feature_row(entry.node)) {
                *m += x;
            }
        }
        let inv = 1.0 / sampled.len() as f32;
        for m in &mut mean {
            *m *= inv;
        }
        mean
    }

    /// Builds one node's embedding var on the tape.
    fn forward_node(
        &self,
        tape: &mut Tape,
        graph: &HeteroGraph,
        node: NodeId,
        w1: Var,
        w2: Var,
        seed: u64,
    ) -> Var {
        let mut rng = StdRng::seed_from_u64(hash_seed(seed, &[u64::from(node)]));
        let d0 = graph.feature_dim();
        let wide = sample_wide(graph, node, self.config.sample_size, &mut rng);

        // Layer-1 inputs for the target and each sampled neighbour:
        // [x_u ; mean of u's sampled neighbours' features].
        let mut layer1_in = Tensor::zeros(wide.len() + 1, 2 * d0);
        let ids: Vec<NodeId> = std::iter::once(node)
            .chain(wide.entries.iter().map(|e| e.node))
            .collect();
        for (i, &u) in ids.iter().enumerate() {
            let row = layer1_in.row_mut(i);
            row[..d0].copy_from_slice(graph.feature_row(u));
            let mean = self.neighbor_feature_mean(graph, u, &mut rng);
            row[d0..].copy_from_slice(&mean);
        }
        let input = tape.leaf(layer1_in);
        let pre1 = tape.matmul(input, w1);
        let h1 = tape.relu(pre1); // (|N|+1, h)

        // Layer 2: [h¹_v ; mean over neighbour h¹].
        let h_self = tape.select_rows(h1, &[0]);
        let h_neigh = if wide.is_empty() {
            tape.leaf(Tensor::zeros(1, self.config.hidden))
        } else {
            let rows: Vec<usize> = (1..=wide.len()).collect();
            let selected = tape.select_rows(h1, &rows);
            tape.mean_rows(selected)
        };
        let concat = tape.hstack(&[h_self, h_neigh]);
        let pre2 = tape.matmul(concat, w2);
        let h2 = tape.relu(pre2);
        tape.l2_normalize_rows(h2)
    }

    fn forward_batch(
        &self,
        graph: &HeteroGraph,
        nodes: &[NodeId],
        seed: u64,
    ) -> (Tape, Var, Var, [Var; 3]) {
        let (w1_id, w2_id, clf_id) = self.ids.expect("fitted");
        let mut tape = Tape::new();
        let w1 = tape.leaf(self.params.get(w1_id).clone());
        let w2 = tape.leaf(self.params.get(w2_id).clone());
        let clf = tape.leaf(self.params.get(clf_id).clone());
        let embs: Vec<Var> = nodes
            .iter()
            .map(|&v| self.forward_node(&mut tape, graph, v, w1, w2, seed))
            .collect();
        let stacked = tape.vstack(&embs);
        let logits = tape.matmul(stacked, clf);
        (tape, stacked, logits, [w1, w2, clf])
    }
}

impl NodeClassifier for GraphSage {
    fn name(&self) -> &'static str {
        "GraphSAGE"
    }

    fn fit(&mut self, graph: &HeteroGraph, train: &[NodeId]) {
        self.init(graph);
        let (w1_id, w2_id, clf_id) = self.ids.unwrap();
        let labels = gather_labels(graph, train);
        let mut opt = Adam::with_lr(self.config.learning_rate, self.config.weight_decay);
        for epoch in 0..self.config.epochs {
            for (batch, batch_labels) in train
                .chunks(self.config.batch_size)
                .zip(labels.chunks(self.config.batch_size))
            {
                let seed = hash_seed(self.config.seed, &[10, epoch as u64]);
                let (mut tape, _, logits, [w1, w2, clf]) = self.forward_batch(graph, batch, seed);
                let loss = tape.softmax_cross_entropy(logits, batch_labels);
                tape.backward(loss);
                let grads = extract_grads(
                    &tape,
                    &self.params,
                    &[(w1_id, w1), (w2_id, w2), (clf_id, clf)],
                );
                opt.step(&mut self.params, &grads);
            }
        }
    }

    fn predict(&self, graph: &HeteroGraph, nodes: &[NodeId]) -> Vec<usize> {
        let (tape, _, logits, _) =
            self.forward_batch(graph, nodes, hash_seed(self.config.seed, &[99]));
        let l = tape.value(logits);
        (0..nodes.len()).map(|i| l.argmax_row(i)).collect()
    }

    fn embed(&self, graph: &HeteroGraph, nodes: &[NodeId]) -> Tensor {
        let (tape, emb, _, _) =
            self.forward_batch(graph, nodes, hash_seed(self.config.seed, &[98]));
        tape.value(emb).clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use widen_data::{acm_like, Scale};
    use widen_eval::micro_f1;

    #[test]
    fn sage_learns_smoke_acm() {
        let d = acm_like(Scale::Smoke, 1);
        let cfg = BaselineConfig {
            epochs: 25,
            learning_rate: 1e-2,
            ..Default::default()
        };
        let mut model = GraphSage::new(cfg);
        model.fit(&d.graph, &d.transductive.train);
        let preds = model.predict(&d.graph, &d.transductive.test);
        let truth = gather_labels(&d.graph, &d.transductive.test);
        let f1 = micro_f1(&truth, &preds);
        assert!(f1 > 0.6, "GraphSAGE micro-F1 = {f1}");
    }

    #[test]
    fn sage_embeddings_are_unit_norm() {
        let d = acm_like(Scale::Smoke, 2);
        let mut model = GraphSage::new(BaselineConfig {
            epochs: 2,
            ..Default::default()
        });
        model.fit(&d.graph, &d.transductive.train);
        let emb = model.embed(&d.graph, &d.transductive.test[..6]);
        assert_eq!(emb.shape(), (6, 32));
        for r in 0..6 {
            let norm: f32 = emb.row(r).iter().map(|x| x * x).sum::<f32>().sqrt();
            assert!(norm < 1.0 + 1e-4);
        }
    }

    #[test]
    fn sage_is_inductive() {
        let d = acm_like(Scale::Smoke, 3);
        let reduced = d.graph.without_nodes(&d.inductive.test);
        let train_new: Vec<u32> = d
            .inductive
            .train
            .iter()
            .filter_map(|&v| reduced.mapping.to_new(v))
            .collect();
        let cfg = BaselineConfig {
            epochs: 15,
            learning_rate: 1e-2,
            ..Default::default()
        };
        let mut model = GraphSage::new(cfg);
        model.fit(&reduced.graph, &train_new);
        // Predict unseen nodes on the full graph.
        let preds = model.predict(&d.graph, &d.inductive.test);
        let truth = gather_labels(&d.graph, &d.inductive.test);
        let f1 = micro_f1(&truth, &preds);
        assert!(f1 > 0.45, "inductive GraphSAGE micro-F1 = {f1}");
        assert!(model.supports_inductive());
    }
}
