//! HGT (Hu et al., WWW 2020): Heterogeneous Graph Transformer.
//!
//! One transformer layer over sampled neighbourhoods with HGT's defining
//! heterogeneous parameterisation: node-type-specific key/query/value
//! projections composed with edge-type-specific attention and message
//! transforms:
//!
//! * `q = x_v W_Q^{τ(v)}`
//! * `k_u = (x_u W_K^{τ(u)}) W_ATT^{φ(e)}`, `m_u = (x_u W_V^{τ(u)}) W_MSG^{φ(e)}`
//! * `α = softmax(q·kᵀ/√h)`, `h_v = ReLU((Σ α_u m_u) W_out + x_v W_self)`
//!
//! followed by a linear classifier. Sampling makes it mini-batch trainable
//! and inductive, as in the original's HGSampling.

use rand::rngs::StdRng;
use rand::SeedableRng;
use widen_graph::{HeteroGraph, NodeId};
use widen_sampling::{hash_seed, sample_wide};
use widen_tensor::{xavier_uniform, Adam, Optimizer, ParamId, ParamStore, Tape, Tensor, Var};

use crate::common::{gather_features, gather_labels, BaselineConfig, NodeClassifier};
use crate::gcn::extract_grads;

/// One-layer HGT with sampled neighbourhoods.
pub struct Hgt {
    config: BaselineConfig,
    params: ParamStore,
    ids: Option<HgtIds>,
}

#[derive(Clone)]
struct HgtIds {
    /// Per node type: query projection (`d₀ × h`).
    w_q: Vec<ParamId>,
    /// Per node type: key projection.
    w_k: Vec<ParamId>,
    /// Per node type: value projection.
    w_v: Vec<ParamId>,
    /// Per edge type: attention transform (`h × h`).
    w_att: Vec<ParamId>,
    /// Per edge type: message transform (`h × h`).
    w_msg: Vec<ParamId>,
    /// Output transform (`h × h`).
    w_out: ParamId,
    /// Residual/self transform (`d₀ × h`).
    w_self: ParamId,
    /// Classifier (`h × c`).
    clf: ParamId,
}

struct HgtVars {
    w_q: Vec<Var>,
    w_k: Vec<Var>,
    w_v: Vec<Var>,
    w_att: Vec<Var>,
    w_msg: Vec<Var>,
    w_out: Var,
    w_self: Var,
    clf: Var,
}

impl Hgt {
    /// An untrained HGT.
    pub fn new(config: BaselineConfig) -> Self {
        Self {
            config,
            params: ParamStore::new(),
            ids: None,
        }
    }

    fn init(&mut self, graph: &HeteroGraph) {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let d0 = graph.feature_dim();
        let h = self.config.hidden;
        let c = graph.num_classes();
        self.params = ParamStore::new();
        let reg_many = |prefix: &str,
                        count: usize,
                        rows: usize,
                        cols: usize,
                        params: &mut ParamStore,
                        rng: &mut StdRng| {
            (0..count)
                .map(|i| params.register(format!("{prefix}_{i}"), xavier_uniform(rows, cols, rng)))
                .collect::<Vec<_>>()
        };
        let t = graph.num_node_types();
        let e = graph.num_edge_types();
        let w_q = reg_many("w_q", t, d0, h, &mut self.params, &mut rng);
        let w_k = reg_many("w_k", t, d0, h, &mut self.params, &mut rng);
        let w_v = reg_many("w_v", t, d0, h, &mut self.params, &mut rng);
        let w_att = reg_many("w_att", e, h, h, &mut self.params, &mut rng);
        let w_msg = reg_many("w_msg", e, h, h, &mut self.params, &mut rng);
        let w_out = self
            .params
            .register("w_out", xavier_uniform(h, h, &mut rng));
        let w_self = self
            .params
            .register("w_self", xavier_uniform(d0, h, &mut rng));
        let clf = self.params.register("clf", xavier_uniform(h, c, &mut rng));
        self.ids = Some(HgtIds {
            w_q,
            w_k,
            w_v,
            w_att,
            w_msg,
            w_out,
            w_self,
            clf,
        });
    }

    fn insert_vars(&self, tape: &mut Tape) -> HgtVars {
        let ids = self.ids.clone().expect("fitted");
        let leaf =
            |tape: &mut Tape, id: ParamId, params: &ParamStore| tape.leaf(params.get(id).clone());
        HgtVars {
            w_q: ids
                .w_q
                .iter()
                .map(|&i| leaf(tape, i, &self.params))
                .collect(),
            w_k: ids
                .w_k
                .iter()
                .map(|&i| leaf(tape, i, &self.params))
                .collect(),
            w_v: ids
                .w_v
                .iter()
                .map(|&i| leaf(tape, i, &self.params))
                .collect(),
            w_att: ids
                .w_att
                .iter()
                .map(|&i| leaf(tape, i, &self.params))
                .collect(),
            w_msg: ids
                .w_msg
                .iter()
                .map(|&i| leaf(tape, i, &self.params))
                .collect(),
            w_out: leaf(tape, ids.w_out, &self.params),
            w_self: leaf(tape, ids.w_self, &self.params),
            clf: leaf(tape, ids.clf, &self.params),
        }
    }

    fn tracked(&self, vars: &HgtVars) -> Vec<(ParamId, Var)> {
        let ids = self.ids.clone().expect("fitted");
        let mut pairs = Vec::new();
        for (id, var) in ids.w_q.iter().zip(&vars.w_q) {
            pairs.push((*id, *var));
        }
        for (id, var) in ids.w_k.iter().zip(&vars.w_k) {
            pairs.push((*id, *var));
        }
        for (id, var) in ids.w_v.iter().zip(&vars.w_v) {
            pairs.push((*id, *var));
        }
        for (id, var) in ids.w_att.iter().zip(&vars.w_att) {
            pairs.push((*id, *var));
        }
        for (id, var) in ids.w_msg.iter().zip(&vars.w_msg) {
            pairs.push((*id, *var));
        }
        pairs.push((ids.w_out, vars.w_out));
        pairs.push((ids.w_self, vars.w_self));
        pairs.push((ids.clf, vars.clf));
        pairs
    }

    /// One node's transformed representation (`1 × h`).
    fn forward_node(
        &self,
        tape: &mut Tape,
        graph: &HeteroGraph,
        node: NodeId,
        vars: &HgtVars,
        seed: u64,
    ) -> Var {
        let mut rng = StdRng::seed_from_u64(hash_seed(seed, &[u64::from(node)]));
        let wide = sample_wide(graph, node, self.config.sample_size, &mut rng);

        let x_v = tape.leaf(gather_features(graph, &[node]));
        let tau_v = graph.node_type(node).0 as usize;
        let q = tape.matmul(x_v, vars.w_q[tau_v]); // (1, h)
        let self_term = tape.matmul(x_v, vars.w_self);

        if wide.is_empty() {
            let out = tape.matmul(self_term, vars.w_out);
            return tape.relu(out);
        }

        // Group neighbours by (node type, edge type) so each group shares
        // one projection chain.
        let mut groups: rustc_hash::FxHashMap<(u16, u16), Vec<NodeId>> =
            rustc_hash::FxHashMap::default();
        let mut order: Vec<(u16, u16)> = Vec::new();
        for entry in &wide.entries {
            let key = (graph.node_type(entry.node).0, entry.edge_type);
            if !groups.contains_key(&key) {
                order.push(key);
            }
            groups.entry(key).or_default().push(entry.node);
        }

        let mut keys = Vec::new();
        let mut msgs = Vec::new();
        for key in &order {
            let nodes = &groups[key];
            let x_u = tape.leaf(gather_features(graph, nodes));
            let (tau, phi) = (key.0 as usize, key.1 as usize);
            let k_base = tape.matmul(x_u, vars.w_k[tau]);
            let k = tape.matmul(k_base, vars.w_att[phi]);
            let m_base = tape.matmul(x_u, vars.w_v[tau]);
            let m = tape.matmul(m_base, vars.w_msg[phi]);
            keys.push(k);
            msgs.push(m);
        }
        let k_all = if keys.len() == 1 {
            keys[0]
        } else {
            tape.vstack(&keys)
        };
        let m_all = if msgs.len() == 1 {
            msgs[0]
        } else {
            tape.vstack(&msgs)
        };
        let scores = tape.matmul_nt(q, k_all);
        let scaled = tape.scale(scores, 1.0 / (self.config.hidden as f32).sqrt());
        let alpha = tape.softmax_rows(scaled);
        let agg = tape.matmul(alpha, m_all);
        let out = tape.matmul(agg, vars.w_out);
        let combined = tape.add(out, self_term);
        tape.relu(combined)
    }

    fn forward_batch(
        &self,
        graph: &HeteroGraph,
        nodes: &[NodeId],
        seed: u64,
    ) -> (Tape, Var, Var, HgtVars) {
        let mut tape = Tape::new();
        let vars = self.insert_vars(&mut tape);
        let hs: Vec<Var> = nodes
            .iter()
            .map(|&v| self.forward_node(&mut tape, graph, v, &vars, seed))
            .collect();
        let stacked = tape.vstack(&hs);
        let logits = tape.matmul(stacked, vars.clf);
        (tape, stacked, logits, vars)
    }
}

impl NodeClassifier for Hgt {
    fn name(&self) -> &'static str {
        "HGT"
    }

    fn fit(&mut self, graph: &HeteroGraph, train: &[NodeId]) {
        self.init(graph);
        let labels = gather_labels(graph, train);
        let mut opt = Adam::with_lr(self.config.learning_rate, self.config.weight_decay);
        for epoch in 0..self.config.epochs {
            for (batch, batch_labels) in train
                .chunks(self.config.batch_size)
                .zip(labels.chunks(self.config.batch_size))
            {
                let seed = hash_seed(self.config.seed, &[30, epoch as u64]);
                let (mut tape, _, logits, vars) = self.forward_batch(graph, batch, seed);
                let loss = tape.softmax_cross_entropy(logits, batch_labels);
                tape.backward(loss);
                let grads = extract_grads(&tape, &self.params, &self.tracked(&vars));
                opt.step(&mut self.params, &grads);
            }
        }
    }

    fn predict(&self, graph: &HeteroGraph, nodes: &[NodeId]) -> Vec<usize> {
        let (tape, _, logits, _) =
            self.forward_batch(graph, nodes, hash_seed(self.config.seed, &[95]));
        let l = tape.value(logits);
        (0..nodes.len()).map(|i| l.argmax_row(i)).collect()
    }

    fn embed(&self, graph: &HeteroGraph, nodes: &[NodeId]) -> Tensor {
        let (tape, emb, _, _) =
            self.forward_batch(graph, nodes, hash_seed(self.config.seed, &[94]));
        tape.value(emb).clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use widen_data::{acm_like, Scale};
    use widen_eval::micro_f1;

    #[test]
    fn hgt_learns_smoke_acm() {
        let d = acm_like(Scale::Smoke, 1);
        let cfg = BaselineConfig {
            epochs: 25,
            learning_rate: 1e-2,
            ..Default::default()
        };
        let mut model = Hgt::new(cfg);
        model.fit(&d.graph, &d.transductive.train);
        let preds = model.predict(&d.graph, &d.transductive.test);
        let truth = gather_labels(&d.graph, &d.transductive.test);
        let f1 = micro_f1(&truth, &preds);
        assert!(f1 > 0.6, "HGT micro-F1 = {f1}");
    }

    #[test]
    fn hgt_has_type_specific_parameters() {
        let d = acm_like(Scale::Smoke, 2);
        let mut model = Hgt::new(BaselineConfig {
            epochs: 1,
            ..Default::default()
        });
        model.fit(&d.graph, &d.transductive.train);
        let ids = model.ids.clone().unwrap();
        assert_eq!(ids.w_q.len(), d.graph.num_node_types());
        assert_eq!(ids.w_att.len(), d.graph.num_edge_types());
    }

    #[test]
    fn hgt_is_inductive() {
        let d = acm_like(Scale::Smoke, 3);
        let reduced = d.graph.without_nodes(&d.inductive.test);
        let train_new: Vec<u32> = d
            .inductive
            .train
            .iter()
            .filter_map(|&v| reduced.mapping.to_new(v))
            .collect();
        let cfg = BaselineConfig {
            epochs: 12,
            learning_rate: 1e-2,
            ..Default::default()
        };
        let mut model = Hgt::new(cfg);
        model.fit(&reduced.graph, &train_new);
        let preds = model.predict(&d.graph, &d.inductive.test);
        assert_eq!(preds.len(), d.inductive.test.len());
    }
}
