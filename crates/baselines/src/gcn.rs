//! GCN (Kipf & Welling, ICLR 2017): two-layer spectral graph convolution
//! with symmetric renormalised adjacency, trained full-graph.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;
use widen_graph::{HeteroGraph, NodeId};
use widen_tensor::{
    xavier_uniform, Adam, CsrMatrix, Optimizer, ParamId, ParamStore, Tape, Tensor, Var,
};

use crate::common::{gather_labels, BaselineConfig, NodeClassifier};

/// Two-layer GCN: `Z = Â ReLU(Â X W₁) W₂` with `Â = D̂^{-1/2}(A+I)D̂^{-1/2}`.
pub struct Gcn {
    config: BaselineConfig,
    params: ParamStore,
    w1: Option<ParamId>,
    w2: Option<ParamId>,
}

struct Forward {
    hidden: Var,
    logits: Var,
    w1: Var,
    w2: Var,
}

impl Gcn {
    /// An untrained GCN.
    pub fn new(config: BaselineConfig) -> Self {
        Self {
            config,
            params: ParamStore::new(),
            w1: None,
            w2: None,
        }
    }

    fn init(&mut self, graph: &HeteroGraph) {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let d0 = graph.feature_dim();
        let h = self.config.hidden;
        let c = graph.num_classes();
        self.params = ParamStore::new();
        self.w1 = Some(self.params.register("w1", xavier_uniform(d0, h, &mut rng)));
        self.w2 = Some(self.params.register("w2", xavier_uniform(h, c, &mut rng)));
    }

    fn forward(&self, tape: &mut Tape, graph: &HeteroGraph, adj: &Arc<CsrMatrix>) -> Forward {
        let x = tape.leaf(graph.features().clone());
        let w1 = tape.leaf(self.params.get(self.w1.expect("fitted")).clone());
        let w2 = tape.leaf(self.params.get(self.w2.expect("fitted")).clone());
        let xw = tape.matmul(x, w1);
        let prop1 = tape.spmm(adj.clone(), xw);
        let hidden = tape.relu(prop1);
        let hw = tape.matmul(hidden, w2);
        let logits = tape.spmm(adj.clone(), hw);
        Forward {
            hidden,
            logits,
            w1,
            w2,
        }
    }

    fn normalized_adjacency(graph: &HeteroGraph) -> Arc<CsrMatrix> {
        Arc::new(graph.adjacency().gcn_normalized())
    }
}

impl NodeClassifier for Gcn {
    fn name(&self) -> &'static str {
        "GCN"
    }

    fn fit(&mut self, graph: &HeteroGraph, train: &[NodeId]) {
        self.init(graph);
        let adj = Self::normalized_adjacency(graph);
        let labels = gather_labels(graph, train);
        let train_rows: Vec<usize> = train.iter().map(|&v| v as usize).collect();
        let mut opt = Adam::with_lr(self.config.learning_rate, self.config.weight_decay);
        for _ in 0..self.config.epochs {
            let mut tape = Tape::new();
            let fw = self.forward(&mut tape, graph, &adj);
            let picked = tape.select_rows(fw.logits, &train_rows);
            let loss = tape.softmax_cross_entropy(picked, &labels);
            tape.backward(loss);
            let grads = extract_grads(
                &tape,
                &self.params,
                &[(self.w1.unwrap(), fw.w1), (self.w2.unwrap(), fw.w2)],
            );
            opt.step(&mut self.params, &grads);
        }
    }

    fn predict(&self, graph: &HeteroGraph, nodes: &[NodeId]) -> Vec<usize> {
        let adj = Self::normalized_adjacency(graph);
        let mut tape = Tape::new();
        let fw = self.forward(&mut tape, graph, &adj);
        let l = tape.value(fw.logits);
        nodes.iter().map(|&v| l.argmax_row(v as usize)).collect()
    }

    fn embed(&self, graph: &HeteroGraph, nodes: &[NodeId]) -> Tensor {
        let adj = Self::normalized_adjacency(graph);
        let mut tape = Tape::new();
        let fw = self.forward(&mut tape, graph, &adj);
        let rows: Vec<usize> = nodes.iter().map(|&v| v as usize).collect();
        tape.value(fw.hidden).select_rows(&rows)
    }
}

/// Collects gradients for `(ParamId, Var)` pairs, zero-filling absentees.
pub(crate) fn extract_grads(
    tape: &Tape,
    params: &ParamStore,
    pairs: &[(ParamId, Var)],
) -> Vec<(ParamId, Tensor)> {
    pairs
        .iter()
        .map(|&(id, var)| {
            let g = tape.grad(var).cloned().unwrap_or_else(|| {
                let (r, c) = params.get(id).shape();
                Tensor::zeros(r, c)
            });
            (id, g)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use widen_data::{acm_like, Scale};
    use widen_eval::micro_f1;

    #[test]
    fn gcn_learns_smoke_acm() {
        let d = acm_like(Scale::Smoke, 1);
        let cfg = BaselineConfig {
            epochs: 60,
            learning_rate: 1e-2,
            ..Default::default()
        };
        let mut gcn = Gcn::new(cfg);
        gcn.fit(&d.graph, &d.transductive.train);
        let preds = gcn.predict(&d.graph, &d.transductive.test);
        let truth = gather_labels(&d.graph, &d.transductive.test);
        let f1 = micro_f1(&truth, &preds);
        assert!(f1 > 0.6, "GCN micro-F1 = {f1}");
    }

    #[test]
    fn gcn_embeddings_have_hidden_width() {
        let d = acm_like(Scale::Smoke, 2);
        let mut gcn = Gcn::new(BaselineConfig {
            epochs: 3,
            ..Default::default()
        });
        gcn.fit(&d.graph, &d.transductive.train);
        let emb = gcn.embed(&d.graph, &d.transductive.test[..5]);
        assert_eq!(emb.shape(), (5, 32));
        assert!(emb.all_finite());
    }

    #[test]
    fn gcn_inductive_predicts_on_larger_graph() {
        // Fit on the reduced graph, predict on the full graph (§4.6).
        let d = acm_like(Scale::Smoke, 3);
        let reduced = d.graph.without_nodes(&d.inductive.test);
        let train_new: Vec<u32> = d
            .inductive
            .train
            .iter()
            .filter_map(|&v| reduced.mapping.to_new(v))
            .collect();
        let cfg = BaselineConfig {
            epochs: 20,
            learning_rate: 1e-2,
            ..Default::default()
        };
        let mut gcn = Gcn::new(cfg);
        gcn.fit(&reduced.graph, &train_new);
        let preds = gcn.predict(&d.graph, &d.inductive.test);
        assert_eq!(preds.len(), d.inductive.test.len());
    }
}
