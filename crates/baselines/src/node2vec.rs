//! Node2Vec (Grover & Leskovec, KDD 2016): p/q-biased random walks +
//! skip-gram with negative sampling, followed by a softmax-regression
//! readout on the learned embeddings.
//!
//! Purely unsupervised representation learning with a supervised linear
//! probe, as in the paper's protocol. The p/q bias uses the standard
//! rejection-sampling formulation (draw a uniform neighbour, accept with
//! probability `w/ w_max` where `w ∈ {1/p, 1, 1/q}`), which avoids
//! materialising per-edge alias tables. Transductive only: embeddings are
//! indexed by node id (§4.6 excludes Node2Vec from the inductive test).

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use widen_graph::{HeteroGraph, NodeId};
use widen_sampling::AliasTable;
use widen_tensor::{xavier_uniform, Adam, Optimizer, ParamStore, Tape, Tensor};

use crate::common::{gather_labels, BaselineConfig, NodeClassifier};
use crate::gcn::extract_grads;

/// Node2Vec with a linear softmax probe.
pub struct Node2Vec {
    config: BaselineConfig,
    /// Walk return parameter `p` (likelihood of revisiting the previous node).
    pub p: f32,
    /// Walk in-out parameter `q` (BFS- vs DFS-like exploration).
    pub q: f32,
    /// Walks started per node.
    pub walks_per_node: usize,
    /// Walk length.
    pub walk_length: usize,
    /// Skip-gram window size.
    pub window: usize,
    /// Negative samples per positive pair.
    pub negatives: usize,
    embeddings: Option<Tensor>,
    probe: Option<Tensor>,
}

impl Node2Vec {
    /// An untrained Node2Vec with standard defaults (`p = q = 1` reduces to
    /// DeepWalk; we use `p = 1, q = 0.5` to favour exploration).
    pub fn new(config: BaselineConfig) -> Self {
        Self {
            config,
            p: 1.0,
            q: 0.5,
            walks_per_node: 6,
            walk_length: 12,
            window: 4,
            negatives: 4,
            embeddings: None,
            probe: None,
        }
    }

    /// Generates one p/q-biased walk from `start`.
    fn biased_walk(&self, graph: &HeteroGraph, start: NodeId, rng: &mut StdRng) -> Vec<NodeId> {
        let mut walk = Vec::with_capacity(self.walk_length + 1);
        walk.push(start);
        let mut prev: Option<NodeId> = None;
        let mut current = start;
        let w_max = (1.0 / self.p).max(1.0).max(1.0 / self.q);
        for _ in 0..self.walk_length {
            let degree = graph.degree(current);
            if degree == 0 {
                break;
            }
            let next = loop {
                let candidate = graph.neighbors(current)[rng.gen_range(0..degree)];
                let weight = match prev {
                    None => 1.0,
                    Some(p_node) if candidate == p_node => 1.0 / self.p,
                    Some(p_node) if graph.neighbors(candidate).contains(&p_node) => 1.0,
                    Some(_) => 1.0 / self.q,
                };
                if rng.gen::<f32>() < weight / w_max {
                    break candidate;
                }
            };
            walk.push(next);
            prev = Some(current);
            current = next;
        }
        walk
    }

    /// Skip-gram with negative sampling over all generated walks,
    /// hand-rolled SGD on in/out embedding tables.
    fn train_embeddings(&self, graph: &HeteroGraph) -> Tensor {
        let n = graph.num_nodes();
        let d = self.config.hidden;
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut emb_in = Tensor::randn(n, d, 0.5 / d as f32, &mut rng);
        let mut emb_out = Tensor::zeros(n, d);

        // Unigram^0.75 negative-sampling distribution over degrees.
        let weights: Vec<f32> = (0..n)
            .map(|v| ((graph.degree(v as u32) + 1) as f32).powf(0.75))
            .collect();
        let negative_table = AliasTable::new(&weights);

        let lr0 = 0.025f32;
        let total_rounds = self.config.epochs.min(5);
        for round in 0..total_rounds {
            let lr = lr0 * (1.0 - round as f32 / total_rounds as f32).max(0.1);
            for start in 0..n as NodeId {
                for _ in 0..self.walks_per_node {
                    let walk = self.biased_walk(graph, start, &mut rng);
                    for (i, &center) in walk.iter().enumerate() {
                        let lo = i.saturating_sub(self.window);
                        let hi = (i + self.window + 1).min(walk.len());
                        for (j, &context) in walk.iter().enumerate().take(hi).skip(lo) {
                            if j == i {
                                continue;
                            }
                            sgd_pair(
                                &mut emb_in,
                                &mut emb_out,
                                center as usize,
                                context as usize,
                                true,
                                lr,
                            );
                            for _ in 0..self.negatives {
                                let neg = negative_table.sample(&mut rng);
                                if neg != context as usize {
                                    sgd_pair(
                                        &mut emb_in,
                                        &mut emb_out,
                                        center as usize,
                                        neg,
                                        false,
                                        lr,
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }
        emb_in
    }

    /// Fits the linear softmax probe on training-node embeddings.
    fn train_probe(&self, graph: &HeteroGraph, emb: &Tensor, train: &[NodeId]) -> Tensor {
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0x9999);
        let labels = gather_labels(graph, train);
        let rows: Vec<usize> = train.iter().map(|&v| v as usize).collect();
        let x = emb.select_rows(&rows);
        let mut params = ParamStore::new();
        let w = params.register(
            "probe",
            xavier_uniform(self.config.hidden, graph.num_classes(), &mut rng),
        );
        let mut opt = Adam::with_lr(5e-2, 1e-4);
        for _ in 0..200 {
            let mut tape = Tape::new();
            let xv = tape.leaf(x.clone());
            let wv = tape.leaf(params.get(w).clone());
            let logits = tape.matmul(xv, wv);
            let loss = tape.softmax_cross_entropy(logits, &labels);
            tape.backward(loss);
            let grads = extract_grads(&tape, &params, &[(w, wv)]);
            opt.step(&mut params, &grads);
        }
        params.get(w).clone()
    }
}

/// One positive/negative skip-gram SGD update.
fn sgd_pair(
    emb_in: &mut Tensor,
    emb_out: &mut Tensor,
    center: usize,
    other: usize,
    positive: bool,
    lr: f32,
) {
    let dot: f32 = emb_in
        .row(center)
        .iter()
        .zip(emb_out.row(other))
        .map(|(a, b)| a * b)
        .sum();
    let sigma = 1.0 / (1.0 + (-dot).exp());
    let target = if positive { 1.0 } else { 0.0 };
    let g = (sigma - target) * lr;
    // Simultaneous update of both rows.
    for i in 0..emb_in.cols() {
        let vi = emb_in.get(center, i);
        let vo = emb_out.get(other, i);
        emb_in.set(center, i, vi - g * vo);
        emb_out.set(other, i, vo - g * vi);
    }
}

impl NodeClassifier for Node2Vec {
    fn name(&self) -> &'static str {
        "Node2Vec"
    }

    fn fit(&mut self, graph: &HeteroGraph, train: &[NodeId]) {
        let emb = self.train_embeddings(graph);
        let probe = self.train_probe(graph, &emb, train);
        self.embeddings = Some(emb);
        self.probe = Some(probe);
    }

    fn predict(&self, _graph: &HeteroGraph, nodes: &[NodeId]) -> Vec<usize> {
        let emb = self.embeddings.as_ref().expect("fitted");
        let probe = self.probe.as_ref().expect("fitted");
        let rows: Vec<usize> = nodes.iter().map(|&v| v as usize).collect();
        let logits = emb.select_rows(&rows).matmul(probe);
        (0..nodes.len()).map(|i| logits.argmax_row(i)).collect()
    }

    fn embed(&self, _graph: &HeteroGraph, nodes: &[NodeId]) -> Tensor {
        let emb = self.embeddings.as_ref().expect("fitted");
        let rows: Vec<usize> = nodes.iter().map(|&v| v as usize).collect();
        emb.select_rows(&rows)
    }

    fn supports_inductive(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use widen_data::{acm_like, Scale};
    use widen_eval::micro_f1;

    #[test]
    fn node2vec_learns_smoke_acm() {
        let d = acm_like(Scale::Smoke, 1);
        let cfg = BaselineConfig {
            epochs: 3,
            ..Default::default()
        };
        let mut model = Node2Vec::new(cfg);
        model.fit(&d.graph, &d.transductive.train);
        let preds = model.predict(&d.graph, &d.transductive.test);
        let truth = gather_labels(&d.graph, &d.transductive.test);
        let f1 = micro_f1(&truth, &preds);
        // Unsupervised embeddings + linear probe: clearly above the ~0.33
        // random baseline.
        assert!(f1 > 0.45, "Node2Vec micro-F1 = {f1}");
    }

    #[test]
    fn walks_follow_edges() {
        let d = acm_like(Scale::Smoke, 2);
        let model = Node2Vec::new(BaselineConfig::default());
        let mut rng = StdRng::seed_from_u64(1);
        let walk = model.biased_walk(&d.graph, d.transductive.train[0], &mut rng);
        for pair in walk.windows(2) {
            assert!(d.graph.neighbors(pair[0]).contains(&pair[1]));
        }
    }

    #[test]
    fn not_inductive() {
        let model = Node2Vec::new(BaselineConfig::default());
        assert!(!model.supports_inductive());
    }

    #[test]
    fn sgd_pair_pulls_positives_together() {
        let mut emb_in = Tensor::from_rows(&[&[1.0, 0.0], &[0.0, 0.0]]);
        let mut emb_out = Tensor::from_rows(&[&[0.0, 0.0], &[0.5, 0.5]]);
        let before: f32 = emb_in
            .row(0)
            .iter()
            .zip(emb_out.row(1))
            .map(|(a, b)| a * b)
            .sum();
        for _ in 0..50 {
            sgd_pair(&mut emb_in, &mut emb_out, 0, 1, true, 0.1);
        }
        let after: f32 = emb_in
            .row(0)
            .iter()
            .zip(emb_out.row(1))
            .map(|(a, b)| a * b)
            .sum();
        assert!(after > before, "positive pairs should gain similarity");
    }
}
