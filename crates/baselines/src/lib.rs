//! # widen-baselines
//!
//! The eight comparison methods of the paper's Table 2/3, implemented from
//! scratch on the `widen-tensor` substrate:
//!
//! | Method | §4.2 description | Implementation notes |
//! |---|---|---|
//! | [`Node2Vec`](node2vec::Node2Vec) | random-walk skip-gram | p/q-biased walks, negative sampling, manual SGD; transductive only |
//! | [`Gcn`](gcn::Gcn) | spectral graph convolutions | 2-layer, `D̂^{-1/2}(A+I)D̂^{-1/2}` propagation, full graph |
//! | [`FastGcn`](fastgcn::FastGcn) | importance-sampled GCN | per-layer column sampling `q(v) ∝ ‖A·,v‖²` with Monte-Carlo rescaling |
//! | [`GraphSage`](sage::GraphSage) | sample-and-aggregate | 2-layer mean aggregator, per-node mini-batches |
//! | [`Gat`](gat::Gat) | neighbourhood attention | additive (LeakyReLU) attention over sampled neighbourhoods |
//! | [`Gtn`](gtn::Gtn) | learned meta-paths | soft edge-type selection, 2-hop composed propagation |
//! | [`Han`](han::Han) | meta-path attention | auto-derived `L–T–L` meta-path adjacencies + semantic attention |
//! | [`Hgt`](hgt::Hgt) | heterogeneous transformer | node-type projections + edge-type key/message transforms |
//!
//! All methods implement [`NodeClassifier`], so the experiment harnesses
//! iterate over them uniformly. Full-graph methods (GCN / FastGCN / GTN /
//! HAN) support the inductive protocol the way the paper evaluates them
//! (§4.6): weights are fitted on the reduced training graph, then the
//! propagation is *recomputed on the full graph* at prediction time.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod common;
pub mod fastgcn;
pub mod gat;
pub mod gcn;
pub mod gtn;
pub mod han;
pub mod hgt;
pub mod node2vec;
pub mod sage;

pub use common::{BaselineConfig, NodeClassifier};

/// Instantiates every baseline of Table 2 with a shared configuration.
///
/// Order matches the paper's table rows. `Node2Vec` does not support the
/// inductive protocol (its design "requires all node IDs to be known
/// beforehand", §4.6) — check [`NodeClassifier::supports_inductive`].
pub fn all_baselines(config: &BaselineConfig) -> Vec<Box<dyn NodeClassifier>> {
    vec![
        Box::new(node2vec::Node2Vec::new(config.clone())),
        Box::new(gcn::Gcn::new(config.clone())),
        Box::new(fastgcn::FastGcn::new(config.clone())),
        Box::new(sage::GraphSage::new(config.clone())),
        Box::new(gat::Gat::new(config.clone())),
        Box::new(gtn::Gtn::new(config.clone())),
        Box::new(han::Han::new(config.clone())),
        Box::new(hgt::Hgt::new(config.clone())),
    ]
}
