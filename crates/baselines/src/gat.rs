//! GAT (Veličković et al., ICLR 2018): attention over sampled
//! neighbourhoods.
//!
//! Single-head additive attention (one attention layer + linear classifier,
//! the mini-batch "neighbourhood sampling" formulation the paper's §1
//! describes): `e_u = LeakyReLU(z_v a₁ + z_u a₂)` over the target and its
//! sampled neighbours, softmax-normalised into aggregation weights.

use rand::rngs::StdRng;
use rand::SeedableRng;
use widen_graph::{HeteroGraph, NodeId};
use widen_sampling::{hash_seed, sample_wide};
use widen_tensor::{xavier_uniform, Adam, Optimizer, ParamId, ParamStore, Tape, Tensor, Var};

use crate::common::{gather_features, gather_labels, BaselineConfig, NodeClassifier};
use crate::gcn::extract_grads;

/// Single-head GAT with neighbourhood sampling.
pub struct Gat {
    config: BaselineConfig,
    params: ParamStore,
    ids: Option<GatIds>,
}

#[derive(Clone, Copy)]
struct GatIds {
    w: ParamId,
    a_self: ParamId,
    a_neigh: ParamId,
    clf: ParamId,
}

struct GatVars {
    w: Var,
    a_self: Var,
    a_neigh: Var,
    clf: Var,
}

impl Gat {
    /// An untrained GAT.
    pub fn new(config: BaselineConfig) -> Self {
        Self {
            config,
            params: ParamStore::new(),
            ids: None,
        }
    }

    fn init(&mut self, graph: &HeteroGraph) {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let d0 = graph.feature_dim();
        let h = self.config.hidden;
        let c = graph.num_classes();
        self.params = ParamStore::new();
        self.ids = Some(GatIds {
            w: self.params.register("w", xavier_uniform(d0, h, &mut rng)),
            a_self: self
                .params
                .register("a_self", xavier_uniform(h, 1, &mut rng)),
            a_neigh: self
                .params
                .register("a_neigh", xavier_uniform(h, 1, &mut rng)),
            clf: self.params.register("clf", xavier_uniform(h, c, &mut rng)),
        });
    }

    fn insert_vars(&self, tape: &mut Tape) -> GatVars {
        let ids = self.ids.expect("fitted");
        GatVars {
            w: tape.leaf(self.params.get(ids.w).clone()),
            a_self: tape.leaf(self.params.get(ids.a_self).clone()),
            a_neigh: tape.leaf(self.params.get(ids.a_neigh).clone()),
            clf: tape.leaf(self.params.get(ids.clf).clone()),
        }
    }

    /// One node's attended representation (`1 × h`).
    fn forward_node(
        &self,
        tape: &mut Tape,
        graph: &HeteroGraph,
        node: NodeId,
        vars: &GatVars,
        seed: u64,
    ) -> Var {
        let mut rng = StdRng::seed_from_u64(hash_seed(seed, &[u64::from(node)]));
        let wide = sample_wide(graph, node, self.config.sample_size, &mut rng);
        let ids: Vec<NodeId> = std::iter::once(node)
            .chain(wide.entries.iter().map(|e| e.node))
            .collect();
        let x = tape.leaf(gather_features(graph, &ids));
        let z = tape.matmul(x, vars.w); // (S+1, h)

        // e_u = LeakyReLU(z_v·a_self + z_u·a_neigh), over u ∈ {v} ∪ N(v).
        let z_v = tape.select_rows(z, &[0]);
        let self_score = tape.matmul(z_v, vars.a_self); // (1,1)
        let neigh_scores = tape.matmul(z, vars.a_neigh); // (S+1,1)
        let scores_row = tape.transpose(neigh_scores); // (1,S+1)
        let ones = tape.leaf(Tensor::full(1, ids.len(), 1.0));
        let self_bcast = tape.mul_scalar_var(ones, self_score);
        let combined = tape.add(scores_row, self_bcast);
        let activated = tape.leaky_relu(combined, 0.2);
        let alpha = tape.softmax_rows(activated); // (1, S+1)
        let agg = tape.matmul(alpha, z); // (1, h)
        tape.relu(agg)
    }

    fn forward_batch(
        &self,
        graph: &HeteroGraph,
        nodes: &[NodeId],
        seed: u64,
    ) -> (Tape, Var, Var, GatVars) {
        let mut tape = Tape::new();
        let vars = self.insert_vars(&mut tape);
        let hs: Vec<Var> = nodes
            .iter()
            .map(|&v| self.forward_node(&mut tape, graph, v, &vars, seed))
            .collect();
        let stacked = tape.vstack(&hs);
        let logits = tape.matmul(stacked, vars.clf);
        (tape, stacked, logits, vars)
    }
}

impl NodeClassifier for Gat {
    fn name(&self) -> &'static str {
        "GAT"
    }

    fn fit(&mut self, graph: &HeteroGraph, train: &[NodeId]) {
        self.init(graph);
        let ids = self.ids.unwrap();
        let labels = gather_labels(graph, train);
        let mut opt = Adam::with_lr(self.config.learning_rate, self.config.weight_decay);
        for epoch in 0..self.config.epochs {
            for (batch, batch_labels) in train
                .chunks(self.config.batch_size)
                .zip(labels.chunks(self.config.batch_size))
            {
                let seed = hash_seed(self.config.seed, &[20, epoch as u64]);
                let (mut tape, _, logits, vars) = self.forward_batch(graph, batch, seed);
                let loss = tape.softmax_cross_entropy(logits, batch_labels);
                tape.backward(loss);
                let grads = extract_grads(
                    &tape,
                    &self.params,
                    &[
                        (ids.w, vars.w),
                        (ids.a_self, vars.a_self),
                        (ids.a_neigh, vars.a_neigh),
                        (ids.clf, vars.clf),
                    ],
                );
                opt.step(&mut self.params, &grads);
            }
        }
    }

    fn predict(&self, graph: &HeteroGraph, nodes: &[NodeId]) -> Vec<usize> {
        let (tape, _, logits, _) =
            self.forward_batch(graph, nodes, hash_seed(self.config.seed, &[97]));
        let l = tape.value(logits);
        (0..nodes.len()).map(|i| l.argmax_row(i)).collect()
    }

    fn embed(&self, graph: &HeteroGraph, nodes: &[NodeId]) -> Tensor {
        let (tape, emb, _, _) =
            self.forward_batch(graph, nodes, hash_seed(self.config.seed, &[96]));
        tape.value(emb).clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use widen_data::{acm_like, Scale};
    use widen_eval::micro_f1;

    #[test]
    fn gat_learns_smoke_acm() {
        let d = acm_like(Scale::Smoke, 1);
        let cfg = BaselineConfig {
            epochs: 25,
            learning_rate: 1e-2,
            ..Default::default()
        };
        let mut model = Gat::new(cfg);
        model.fit(&d.graph, &d.transductive.train);
        let preds = model.predict(&d.graph, &d.transductive.test);
        let truth = gather_labels(&d.graph, &d.transductive.test);
        let f1 = micro_f1(&truth, &preds);
        assert!(f1 > 0.6, "GAT micro-F1 = {f1}");
    }

    #[test]
    fn gat_attention_is_probability_weighted() {
        // Indirect check: embeddings are finite and non-degenerate.
        let d = acm_like(Scale::Smoke, 2);
        let mut model = Gat::new(BaselineConfig {
            epochs: 3,
            ..Default::default()
        });
        model.fit(&d.graph, &d.transductive.train);
        let emb = model.embed(&d.graph, &d.transductive.test[..8]);
        assert!(emb.all_finite());
        assert!(emb.frobenius_norm() > 0.0);
    }

    #[test]
    fn gat_handles_isolated_nodes() {
        // A node with no neighbours still gets a representation (self only).
        use widen_graph::GraphBuilder;
        let mut b = GraphBuilder::new(&["x"], &["e"]).with_classes(2);
        let x = b.node_type("x").unwrap();
        let e = b.edge_type("e").unwrap();
        let n0 = b.add_node(x, vec![1.0, 0.0], Some(0));
        let n1 = b.add_node(x, vec![0.0, 1.0], Some(1));
        let n2 = b.add_node(x, vec![0.5, 0.5], Some(0));
        b.add_edge(n0, n1, e);
        let _ = n2; // n2 stays isolated
        let g = b.build();
        let mut model = Gat::new(BaselineConfig {
            epochs: 4,
            ..Default::default()
        });
        model.fit(&g, &[n0, n1, n2]);
        let preds = model.predict(&g, &[n2]);
        assert_eq!(preds.len(), 1);
    }
}
