//! FastGCN (Chen, Ma & Xiao, ICLR 2018): GCN with per-layer importance
//! sampling, enabling mini-batch training on large graphs.
//!
//! Each training step draws an output batch `B`, a layer-1 node sample `S₁`
//! and a layer-0 node sample `S₀`, all from the importance distribution
//! `q(v) ∝ ‖Â·,v‖²`, and propagates through the restricted, Monte-Carlo
//! rescaled adjacency blocks `Â[B, S₁]` and `Â[S₁, S₀]`. Inference runs the
//! exact full-graph propagation with the trained weights.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;
use widen_graph::{HeteroGraph, NodeId};
use widen_sampling::AliasTable;
use widen_tensor::{xavier_uniform, Adam, Optimizer, ParamId, ParamStore, Tape, Tensor};

use crate::common::{gather_labels, BaselineConfig, NodeClassifier};
use crate::gcn::extract_grads;

/// Importance-sampled two-layer GCN.
pub struct FastGcn {
    config: BaselineConfig,
    params: ParamStore,
    w1: Option<ParamId>,
    w2: Option<ParamId>,
    /// Nodes sampled per hidden layer each step; `None` scales with the
    /// graph (`n/16`, clamped to `[128, 1024]`), mirroring the original's
    /// 400-per-layer setting on citation-scale graphs.
    pub layer_sample: Option<usize>,
}

impl FastGcn {
    /// An untrained FastGCN with graph-scaled per-layer samples.
    pub fn new(config: BaselineConfig) -> Self {
        Self {
            config,
            params: ParamStore::new(),
            w1: None,
            w2: None,
            layer_sample: None,
        }
    }

    fn layer_sample_for(&self, n: usize) -> usize {
        self.layer_sample
            .unwrap_or_else(|| (n / 16).clamp(128, 1024))
            .min(n)
    }

    fn init(&mut self, graph: &HeteroGraph) {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        self.params = ParamStore::new();
        self.w1 = Some(self.params.register(
            "w1",
            xavier_uniform(graph.feature_dim(), self.config.hidden, &mut rng),
        ));
        self.w2 = Some(self.params.register(
            "w2",
            xavier_uniform(self.config.hidden, graph.num_classes(), &mut rng),
        ));
    }

    /// Draws `count` distinct nodes from the importance distribution.
    fn sample_layer(
        alias: &AliasTable,
        q: &[f32],
        count: usize,
        rng: &mut StdRng,
    ) -> (Vec<usize>, Vec<f32>) {
        let mut seen = rustc_hash::FxHashSet::default();
        let mut nodes = Vec::with_capacity(count);
        let mut probs = Vec::with_capacity(count);
        let mut attempts = 0;
        while nodes.len() < count && attempts < count * 20 {
            let v = alias.sample(rng);
            attempts += 1;
            if seen.insert(v) {
                nodes.push(v);
                probs.push(q[v]);
            }
        }
        (nodes, probs)
    }
}

impl NodeClassifier for FastGcn {
    fn name(&self) -> &'static str {
        "FastGCN"
    }

    fn fit(&mut self, graph: &HeteroGraph, train: &[NodeId]) {
        self.init(graph);
        let adj = graph.adjacency().gcn_normalized();
        let sq_norms = adj.column_sq_norms();
        let total: f32 = sq_norms.iter().sum();
        let q: Vec<f32> = sq_norms.iter().map(|&n| (n / total).max(1e-12)).collect();
        let alias = AliasTable::new(&q);
        let labels_all = gather_labels(graph, train);
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0xFA57);
        let mut opt = Adam::with_lr(self.config.learning_rate, self.config.weight_decay);
        let layer = self.layer_sample_for(graph.num_nodes());

        for _epoch in 0..self.config.epochs {
            for (batch, batch_labels) in train
                .chunks(self.config.batch_size)
                .zip(labels_all.chunks(self.config.batch_size))
            {
                let batch_rows: Vec<usize> = batch.iter().map(|&v| v as usize).collect();
                let (s1, q1) = Self::sample_layer(&alias, &q, layer, &mut rng);
                let (s0, q0) = Self::sample_layer(&alias, &q, layer, &mut rng);
                // Restricted, rescaled propagation blocks.
                let a1 = Arc::new(adj.restrict(&batch_rows, &s1, Some(&q1)));
                let a0 = Arc::new(adj.restrict(&s1, &s0, Some(&q0)));

                let mut tape = Tape::new();
                let x0 = {
                    let mut x = Tensor::zeros(s0.len(), graph.feature_dim());
                    for (i, &v) in s0.iter().enumerate() {
                        x.set_row(i, graph.feature_row(v as u32));
                    }
                    tape.leaf(x)
                };
                let w1 = tape.leaf(self.params.get(self.w1.unwrap()).clone());
                let w2 = tape.leaf(self.params.get(self.w2.unwrap()).clone());
                let xw = tape.matmul(x0, w1);
                let h1 = tape.spmm(a0, xw);
                let h1 = tape.relu(h1);
                let hw = tape.matmul(h1, w2);
                let logits = tape.spmm(a1, hw);
                let loss = tape.softmax_cross_entropy(logits, batch_labels);
                tape.backward(loss);
                let grads = extract_grads(
                    &tape,
                    &self.params,
                    &[(self.w1.unwrap(), w1), (self.w2.unwrap(), w2)],
                );
                opt.step(&mut self.params, &grads);
            }
        }
    }

    fn predict(&self, graph: &HeteroGraph, nodes: &[NodeId]) -> Vec<usize> {
        let adj = Arc::new(graph.adjacency().gcn_normalized());
        let mut tape = Tape::new();
        let x = tape.leaf(graph.features().clone());
        let w1 = tape.leaf(self.params.get(self.w1.expect("fitted")).clone());
        let w2 = tape.leaf(self.params.get(self.w2.expect("fitted")).clone());
        let xw = tape.matmul(x, w1);
        let h = tape.spmm(adj.clone(), xw);
        let h = tape.relu(h);
        let hw = tape.matmul(h, w2);
        let logits = tape.spmm(adj, hw);
        let l = tape.value(logits);
        nodes.iter().map(|&v| l.argmax_row(v as usize)).collect()
    }

    fn embed(&self, graph: &HeteroGraph, nodes: &[NodeId]) -> Tensor {
        let adj = Arc::new(graph.adjacency().gcn_normalized());
        let mut tape = Tape::new();
        let x = tape.leaf(graph.features().clone());
        let w1 = tape.leaf(self.params.get(self.w1.expect("fitted")).clone());
        let xw = tape.matmul(x, w1);
        let h = tape.spmm(adj, xw);
        let h = tape.relu(h);
        let rows: Vec<usize> = nodes.iter().map(|&v| v as usize).collect();
        tape.value(h).select_rows(&rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use widen_data::{acm_like, Scale};
    use widen_eval::micro_f1;

    #[test]
    fn fastgcn_learns_smoke_acm() {
        let d = acm_like(Scale::Smoke, 1);
        let cfg = BaselineConfig {
            epochs: 40,
            learning_rate: 1e-2,
            ..Default::default()
        };
        let mut model = FastGcn::new(cfg);
        model.fit(&d.graph, &d.transductive.train);
        let preds = model.predict(&d.graph, &d.transductive.test);
        let truth = gather_labels(&d.graph, &d.transductive.test);
        let f1 = micro_f1(&truth, &preds);
        assert!(f1 > 0.55, "FastGCN micro-F1 = {f1}");
    }

    #[test]
    fn layer_sampling_draws_distinct_nodes() {
        let d = acm_like(Scale::Smoke, 2);
        let adj = d.graph.adjacency().gcn_normalized();
        let norms = adj.column_sq_norms();
        let total: f32 = norms.iter().sum();
        let q: Vec<f32> = norms.iter().map(|&n| (n / total).max(1e-12)).collect();
        let alias = AliasTable::new(&q);
        let mut rng = StdRng::seed_from_u64(1);
        let (nodes, probs) = FastGcn::sample_layer(&alias, &q, 50, &mut rng);
        assert_eq!(nodes.len(), 50);
        assert_eq!(probs.len(), 50);
        let mut unique = nodes.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), 50);
    }

    #[test]
    fn fastgcn_embed_shape() {
        let d = acm_like(Scale::Smoke, 3);
        let mut model = FastGcn::new(BaselineConfig {
            epochs: 2,
            ..Default::default()
        });
        model.fit(&d.graph, &d.transductive.train);
        let emb = model.embed(&d.graph, &d.transductive.test[..4]);
        assert_eq!(emb.shape(), (4, 32));
    }
}
