//! Offline stand-in for `criterion`: a simple wall-clock benchmarking
//! harness with the upstream call surface (`Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Bencher::iter`, `criterion_group!` /
//! `criterion_main!`).
//!
//! Each benchmark is auto-calibrated to a per-sample time budget, then
//! timed over `sample_size` samples; mean / min / max ns-per-iteration
//! are printed. No statistical analysis, plots, or CLI filtering.

#![deny(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Target wall-clock time for one measured sample.
const SAMPLE_BUDGET: Duration = Duration::from_millis(50);

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Upstream parses CLI args here; the stub accepts and ignores them
    /// (so `cargo bench -- <filter>` does not error).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, DEFAULT_SAMPLE_SIZE, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

const DEFAULT_SAMPLE_SIZE: usize = 10;

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().label);
        run_benchmark(&label, self.sample_size, f);
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().label);
        run_benchmark(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (upstream flushes reports here; the stub prints
    /// eagerly, so this is a no-op).
    pub fn finish(self) {}
}

/// A benchmark label, possibly derived from a parameter value.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` style id.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Id that is just the parameter's display form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

/// Things accepted as benchmark ids (`&str` or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// Converts into a concrete id.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            label: self.to_string(),
        }
    }
}

/// Times closures handed to it by the benchmark body.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` for the calibrated iteration count, recording total time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    // Calibrate: grow the iteration count until one sample fills the
    // budget (also serves as warm-up).
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= SAMPLE_BUDGET || iters >= 1 << 20 {
            break;
        }
        let grow = if b.elapsed.is_zero() {
            16.0
        } else {
            (SAMPLE_BUDGET.as_secs_f64() / b.elapsed.as_secs_f64()).clamp(1.2, 16.0)
        };
        iters = ((iters as f64 * grow).ceil() as u64).max(iters + 1);
    }

    let mut per_iter_ns: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    let mean = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;
    let min = per_iter_ns.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = per_iter_ns.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "{label:<48} time: [{} {} {}]  ({} samples x {} iters)",
        fmt_ns(min),
        fmt_ns(mean),
        fmt_ns(max),
        sample_size,
        iters,
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Prevents the optimiser from deleting a value (upstream re-export).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundles benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_times_a_cheap_closure() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("unit");
        group.sample_size(3);
        let mut count = 0u64;
        group.bench_function(BenchmarkId::from_parameter(1), |b| {
            b.iter(|| {
                count += 1;
                count
            })
        });
        group.finish();
        assert!(count > 0);
    }

    #[test]
    fn fmt_ns_picks_sane_units() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(12_000.0).ends_with("µs"));
        assert!(fmt_ns(12_000_000.0).ends_with("ms"));
    }
}
