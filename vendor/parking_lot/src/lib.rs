//! Offline stand-in for `parking_lot`: [`Mutex`] and [`RwLock`] with the
//! upstream's non-poisoning API (`lock()` returns the guard directly, no
//! `Result`), backed by the `std::sync` primitives.
//!
//! Divergence from upstream: no adaptive spinning, no fairness, no
//! `const fn` constructors, and a panic while holding a lock aborts the
//! poison by unwrapping — the workspace treats a poisoned lock as a bug
//! either way.

#![deny(missing_docs)]

use std::sync;
use std::time::{Duration, Instant};

/// A mutual-exclusion lock; [`Mutex::lock`] never returns a poison error.
#[derive(Default, Debug)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wraps `value` in a new mutex.
    pub fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Acquires the lock only if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

/// A readers-writer lock; lock methods never return poison errors.
#[derive(Default, Debug)]
pub struct RwLock<T> {
    inner: sync::RwLock<T>,
}

/// RAII read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wraps `value` in a new lock.
    pub fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|p| p.into_inner())
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|p| p.into_inner())
    }

    /// Acquires exclusive write access only if the lock is free right now.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Acquires exclusive write access, giving up after `timeout`.
    ///
    /// Divergence from upstream: implemented by polling [`RwLock::try_write`]
    /// with short sleeps rather than a parking queue, so acquisition under
    /// contention can lag by up to one poll interval (100 µs) and no
    /// fairness is provided — acceptable for the workspace's use (bounding
    /// how long a writer waits before reporting a deadline error).
    pub fn try_write_for(&self, timeout: Duration) -> Option<RwLockWriteGuard<'_, T>> {
        const POLL: Duration = Duration::from_micros(100);
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(guard) = self.try_write() {
                return Some(guard);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            std::thread::sleep(POLL.min(deadline - now));
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_contended_returns_none() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn try_write_respects_readers() {
        let l = RwLock::new(0);
        let r = l.read();
        assert!(l.try_write().is_none());
        assert!(l.try_write_for(Duration::from_millis(5)).is_none());
        drop(r);
        assert!(l.try_write().is_some());
        *l.try_write_for(Duration::from_millis(5)).unwrap() += 1;
        assert_eq!(*l.read(), 1);
    }

    #[test]
    fn try_write_for_acquires_once_the_holder_leaves() {
        let l = std::sync::Arc::new(RwLock::new(0u32));
        let held = l.read();
        let waiter = {
            let l = l.clone();
            std::thread::spawn(move || {
                l.try_write_for(Duration::from_secs(5)).map(|mut g| {
                    *g += 1;
                    *g
                })
            })
        };
        std::thread::sleep(Duration::from_millis(10));
        drop(held);
        assert_eq!(waiter.join().unwrap(), Some(1));
    }
}
