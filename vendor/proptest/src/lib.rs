//! Offline stand-in for `proptest`: deterministic random-search property
//! testing with the upstream macro surface (`proptest!`, `prop_assert!`,
//! `prop_assert_eq!`, `prop_assume!`) and strategy combinators
//! (`Range`, tuples, `prop::collection::vec`, `any`, `prop_map`).
//!
//! Divergence from upstream: failing inputs are **not shrunk** and no
//! failure-persistence files are written. Each test runs its configured
//! number of cases from a seed derived from the test's name, so runs
//! are reproducible.

#![deny(missing_docs)]

#[doc(hidden)]
pub use rand as __rand;

/// Strategy trait and combinators.
pub mod strategy {
    use rand::rngs::StdRng;
    use std::ops::Range;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample_value(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Clone, Copy, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn sample_value(&self, rng: &mut StdRng) -> U {
            (self.f)(self.inner.sample_value(rng))
        }
    }

    impl<T> Strategy for Range<T>
    where
        T: rand::distributions::uniform::SampleUniform + PartialOrd + Copy,
    {
        type Value = T;

        fn sample_value(&self, rng: &mut StdRng) -> T {
            use rand::Rng;
            rng.gen_range(self.start..self.end)
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn sample_value(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.sample_value(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A: 0, B: 1);
    tuple_strategy!(A: 0, B: 1, C: 2);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

    /// Always-the-same-value strategy (upstream `Just`).
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample_value(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }
}

/// Types with a canonical "any value" strategy.
pub mod arbitrary {
    use rand::rngs::StdRng;
    use rand::Rng as _;
    use std::marker::PhantomData;

    /// Types that [`any`] can generate.
    pub trait Arbitrary {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> bool {
            rng.gen::<bool>()
        }
    }

    impl Arbitrary for u8 {
        fn arbitrary(rng: &mut StdRng) -> u8 {
            rng.next_u32() as u8
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut StdRng) -> u32 {
            rng.next_u32()
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut StdRng) -> u64 {
            rng.next_u64()
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Clone, Copy, Debug)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> super::strategy::Strategy for Any<T> {
        type Value = T;

        fn sample_value(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy generating any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies (`prop::collection` upstream path).
pub mod prop {
    /// Strategies over collections.
    pub mod collection {
        use crate::strategy::Strategy;
        use rand::rngs::StdRng;
        use std::ops::Range;

        /// A length specification: exact or a half-open range.
        #[derive(Clone, Copy, Debug)]
        pub struct SizeRange {
            lo: usize,
            hi: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                Self { lo: n, hi: n + 1 }
            }
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                Self {
                    lo: r.start,
                    hi: r.end,
                }
            }
        }

        /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
        #[derive(Clone, Copy, Debug)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn sample_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
                use rand::Rng;
                let len = if self.size.lo + 1 >= self.size.hi {
                    self.size.lo
                } else {
                    rng.gen_range(self.size.lo..self.size.hi)
                };
                (0..len).map(|_| self.element.sample_value(rng)).collect()
            }
        }

        /// `prop::collection::vec(element, size)`: a vector strategy.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }
    }
}

/// Test-runner configuration and case outcomes.
pub mod test_runner {
    /// Per-test configuration (subset: case count).
    #[derive(Clone, Copy, Debug)]
    pub struct Config {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` filtered this input; draw another.
        Reject,
        /// A `prop_assert!*` failed with this message.
        Fail(String),
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(msg: String) -> Self {
            Self::Fail(msg)
        }
    }

    /// FNV-1a over the test name: a stable per-test RNG seed.
    pub fn seed_for(name: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests. Each `#[test] fn name(arg in strategy, ...)`
/// becomes a normal `#[test]` running `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_body! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            (<$crate::test_runner::Config as ::std::default::Default>::default())
            $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_body {
    (
        ($config:expr)
        $(
            $(#[$meta:meta])+
            fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let mut rng: $crate::__rand::rngs::StdRng = $crate::__rand::SeedableRng::seed_from_u64(
                    $crate::test_runner::seed_for(concat!(module_path!(), "::", stringify!($name))),
                );
                let mut passed: u32 = 0;
                let mut attempts: u32 = 0;
                while passed < config.cases {
                    attempts += 1;
                    assert!(
                        attempts <= config.cases.saturating_mul(20).max(1000),
                        "too many inputs rejected by prop_assume!"
                    );
                    $(
                        let $arg = $crate::strategy::Strategy::sample_value(&($strat), &mut rng);
                    )*
                    let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    match outcome {
                        Ok(()) => passed += 1,
                        Err($crate::test_runner::TestCaseError::Reject) => continue,
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!("proptest case #{attempts} failed: {msg}");
                        }
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test, failing the case (not
/// panicking directly) so the runner can report the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    left,
                    right
                ),
            ));
        }
    }};
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    stringify!($left),
                    stringify!($right),
                    left
                ),
            ));
        }
    }};
}

/// Discards the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn vec_strategy_respects_bounds(xs in prop::collection::vec(-1.0f32..1.0, 2..7)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 7);
            prop_assert!(xs.iter().all(|x| (-1.0..1.0).contains(x)));
        }

        #[test]
        fn tuples_and_assume_work((a, b) in (0usize..10, 0usize..10)) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }

        #[test]
        fn prop_map_transforms(n in (1usize..5).prop_map(|x| x * 2)) {
            prop_assert!(n % 2 == 0 && (2..10).contains(&n));
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn any_bool_is_generated(flip in any::<bool>()) {
            let seen = [flip];
            prop_assert_eq!(seen.len(), 1);
        }
    }

    #[test]
    fn seeds_differ_by_name() {
        use crate::test_runner::seed_for;
        assert_ne!(seed_for("a"), seed_for("b"));
        assert_eq!(seed_for("a"), seed_for("a"));
    }
}
