//! Offline stand-in for `crossbeam-channel`: multi-producer
//! **multi-consumer** FIFO channels with the upstream surface the
//! workspace uses — [`bounded`] / [`unbounded`] constructors, cloneable
//! [`Sender`] / [`Receiver`] halves, blocking and non-blocking send /
//! receive, and [`Receiver::recv_timeout`] / [`Receiver::recv_deadline`].
//!
//! Divergence from upstream: built on a `Mutex<VecDeque>` plus two
//! condition variables rather than lock-free segments, and `select!` is
//! not provided. Disconnect semantics match upstream: a channel is
//! disconnected when all handles on the *other* side have dropped;
//! receivers drain remaining messages before reporting disconnection.

#![deny(missing_docs)]

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

struct State<T> {
    queue: VecDeque<T>,
    cap: Option<usize>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

/// The sending half of a channel. Cloning produces another producer.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of a channel. Cloning produces another consumer;
/// each message is delivered to exactly one consumer.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Error returned by [`Sender::send`] when all receivers have dropped.
/// Carries the unsent message back to the caller.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by [`Sender::try_send`].
#[derive(Debug, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The channel is at capacity; the message is handed back.
    Full(T),
    /// All receivers have dropped; the message is handed back.
    Disconnected(T),
}

/// Error returned by [`Receiver::recv`]: the channel is empty and all
/// senders have dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// The channel is empty and all senders have dropped.
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`] / [`Receiver::recv_deadline`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived within the window.
    Timeout,
    /// The channel is empty and all senders have dropped.
    Disconnected,
}

/// Creates a channel holding at most `cap` in-flight messages; sends
/// block (or [`TrySendError::Full`]) once the buffer fills.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    channel(Some(cap))
}

/// Creates a channel with an unbounded buffer.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    channel(None)
}

fn channel<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            cap,
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            shared: shared.clone(),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Blocks until the message is enqueued or all receivers drop.
    ///
    /// # Errors
    /// Returns the message back if all receivers have dropped.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut state = self.shared.state.lock().expect("channel poisoned");
        loop {
            if state.receivers == 0 {
                return Err(SendError(msg));
            }
            let full = state.cap.is_some_and(|c| state.queue.len() >= c);
            if !full {
                state.queue.push_back(msg);
                drop(state);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            state = self.shared.not_full.wait(state).expect("channel poisoned");
        }
    }

    /// Enqueues without blocking.
    ///
    /// # Errors
    /// [`TrySendError::Full`] at capacity, [`TrySendError::Disconnected`]
    /// when all receivers have dropped; both hand the message back.
    pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
        let mut state = self.shared.state.lock().expect("channel poisoned");
        if state.receivers == 0 {
            return Err(TrySendError::Disconnected(msg));
        }
        if state.cap.is_some_and(|c| state.queue.len() >= c) {
            return Err(TrySendError::Full(msg));
        }
        state.queue.push_back(msg);
        drop(state);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Number of messages currently buffered.
    pub fn len(&self) -> usize {
        self.shared
            .state
            .lock()
            .expect("channel poisoned")
            .queue
            .len()
    }

    /// Whether the buffer is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.state.lock().expect("channel poisoned").senders += 1;
        Self {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().expect("channel poisoned");
        state.senders -= 1;
        let last = state.senders == 0;
        drop(state);
        if last {
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives or all senders drop.
    ///
    /// # Errors
    /// [`RecvError`] once the channel is empty and all senders have
    /// dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.shared.state.lock().expect("channel poisoned");
        loop {
            if let Some(msg) = state.queue.pop_front() {
                drop(state);
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self.shared.not_empty.wait(state).expect("channel poisoned");
        }
    }

    /// Like [`Receiver::recv`] but gives up after `timeout`.
    ///
    /// # Errors
    /// [`RecvTimeoutError::Timeout`] when the window elapses empty,
    /// [`RecvTimeoutError::Disconnected`] when all senders have dropped.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        self.recv_deadline(Instant::now() + timeout)
    }

    /// Like [`Receiver::recv_timeout`] with an absolute deadline.
    ///
    /// # Errors
    /// Same as [`Receiver::recv_timeout`].
    pub fn recv_deadline(&self, deadline: Instant) -> Result<T, RecvTimeoutError> {
        let mut state = self.shared.state.lock().expect("channel poisoned");
        loop {
            if let Some(msg) = state.queue.pop_front() {
                drop(state);
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if state.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _timed_out) = self
                .shared
                .not_empty
                .wait_timeout(state, deadline - now)
                .expect("channel poisoned");
            state = guard;
        }
    }

    /// Dequeues without blocking.
    ///
    /// # Errors
    /// [`TryRecvError::Empty`] when nothing is buffered,
    /// [`TryRecvError::Disconnected`] when additionally all senders have
    /// dropped.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.shared.state.lock().expect("channel poisoned");
        if let Some(msg) = state.queue.pop_front() {
            drop(state);
            self.shared.not_full.notify_one();
            return Ok(msg);
        }
        if state.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Number of messages currently buffered.
    pub fn len(&self) -> usize {
        self.shared
            .state
            .lock()
            .expect("channel poisoned")
            .queue
            .len()
    }

    /// Whether the buffer is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared
            .state
            .lock()
            .expect("channel poisoned")
            .receivers += 1;
        Self {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().expect("channel poisoned");
        state.receivers -= 1;
        let last = state.receivers == 0;
        drop(state);
        if last {
            self.shared.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_order_single_thread() {
        let (tx, rx) = unbounded();
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        let got: Vec<i32> = (0..5).map(|_| rx.recv().unwrap()).collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn bounded_try_send_reports_full() {
        let (tx, rx) = bounded(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
        rx.recv().unwrap();
        tx.try_send(3).unwrap();
    }

    #[test]
    fn drop_all_senders_disconnects_after_drain() {
        let (tx, rx) = unbounded();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn drop_all_receivers_disconnects_senders() {
        let (tx, rx) = bounded::<i32>(1);
        drop(rx);
        assert_eq!(tx.send(1), Err(SendError(1)));
        assert_eq!(tx.try_send(2), Err(TrySendError::Disconnected(2)));
    }

    #[test]
    fn recv_timeout_times_out_and_then_succeeds() {
        let (tx, rx) = unbounded();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(5).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(5));
    }

    #[test]
    fn multi_consumer_delivers_each_message_once() {
        let (tx, rx) = unbounded::<u32>();
        let mut handles = Vec::new();
        for _ in 0..3 {
            let rx = rx.clone();
            handles.push(thread::spawn(move || {
                let mut got = Vec::new();
                while let Ok(v) = rx.recv() {
                    got.push(v);
                }
                got
            }));
        }
        drop(rx);
        for i in 0..300u32 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let mut all: Vec<u32> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..300).collect::<Vec<_>>());
    }

    #[test]
    fn blocking_send_unblocks_when_space_frees() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let t = thread::spawn(move || tx.send(2));
        thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        t.join().unwrap().unwrap();
        assert_eq!(rx.recv(), Ok(2));
    }
}
