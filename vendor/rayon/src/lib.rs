//! Offline stand-in for `rayon`: the `par_*` entry points the workspace
//! uses, executed **sequentially**.
//!
//! The target machine exposes a single core, so a sequential fallback
//! costs nothing while keeping call sites identical to real rayon. The
//! `par_*` methods simply return std iterators; adapters like `map`,
//! `enumerate`, `for_each`, `collect` are then the std ones, and
//! rayon-only adapters (`flat_map_iter`) are provided by a blanket
//! extension trait in [`prelude`].

#![deny(missing_docs)]

/// Number of worker threads "in the pool" — the machine's available
/// parallelism, for code that sizes chunks by thread count.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Sequential drop-ins for `rayon::prelude`.
pub mod prelude {
    /// `par_chunks` / `par_windows` style views of immutable slices.
    pub trait ParallelSlice<T> {
        /// Sequential stand-in for `rayon`'s `par_chunks`.
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
        /// Sequential stand-in for `rayon`'s `par_iter`.
        fn par_iter(&self) -> std::slice::Iter<'_, T>;
    }

    impl<T> ParallelSlice<T> for [T] {
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
            self.chunks(chunk_size)
        }

        fn par_iter(&self) -> std::slice::Iter<'_, T> {
            self.iter()
        }
    }

    /// `par_chunks_mut` style views of mutable slices.
    pub trait ParallelSliceMut<T> {
        /// Sequential stand-in for `rayon`'s `par_chunks_mut`.
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
        /// Sequential stand-in for `rayon`'s `par_iter_mut`.
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(chunk_size)
        }

        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
            self.iter_mut()
        }
    }

    /// Rayon-only iterator adapters, defined on every std iterator so
    /// chains written against `ParallelIterator` keep compiling.
    pub trait ParallelIteratorExt: Iterator + Sized {
        /// Rayon's `flat_map_iter`: identical to std `flat_map` here.
        fn flat_map_iter<U, F>(self, f: F) -> std::iter::FlatMap<Self, U, F>
        where
            U: IntoIterator,
            F: FnMut(Self::Item) -> U,
        {
            self.flat_map(f)
        }
    }

    impl<I: Iterator> ParallelIteratorExt for I {}
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_chunks_matches_chunks() {
        let v: Vec<u32> = (0..10).collect();
        let seq: Vec<Vec<u32>> = v.par_chunks(3).map(|c| c.to_vec()).collect();
        assert_eq!(
            seq,
            vec![vec![0, 1, 2], vec![3, 4, 5], vec![6, 7, 8], vec![9]]
        );
    }

    #[test]
    fn par_chunks_mut_mutates_in_place() {
        let mut v = vec![1u32; 6];
        v.par_chunks_mut(2).enumerate().for_each(|(i, c)| {
            for x in c {
                *x += i as u32;
            }
        });
        assert_eq!(v, vec![1, 1, 2, 2, 3, 3]);
    }

    #[test]
    fn flat_map_iter_flattens() {
        let out: Vec<u32> = [1u32, 2]
            .iter()
            .flat_map_iter(|&x| vec![x, x * 10])
            .collect();
        assert_eq!(out, vec![1, 10, 2, 20]);
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(super::current_num_threads() >= 1);
    }
}
