//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access and no vendored registry, so
//! the workspace supplies this minimal, API-compatible subset of `rand`
//! 0.8: the [`Rng`] / [`SeedableRng`] traits, [`rngs::StdRng`] backed by
//! xoshiro256** (seeded via SplitMix64), [`seq::SliceRandom::shuffle`]
//! (Fisher–Yates), and the [`distributions`] plumbing that `rand_distr`
//! builds on.
//!
//! The stream of values differs from upstream `rand`'s `StdRng` (which is
//! ChaCha12-based); everything in this workspace only relies on *seeded
//! determinism and statistical quality*, never on exact upstream values.

#![deny(missing_docs)]

use std::ops::Range;

/// Types that can seed and construct an RNG.
pub trait SeedableRng: Sized {
    /// Deterministically constructs the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A source of randomness: the subset of `rand::Rng` this workspace uses.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform sample from `range` (half-open).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: distributions::uniform::SampleUniform,
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// A sample of `T` from its standard distribution
    /// (`f32`/`f64` in `[0, 1)`, full-range integers, fair `bool`).
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        distributions::Distribution::sample(&distributions::Standard, self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.gen::<f64>() < p
    }

    /// A sample from an explicit distribution.
    fn sample<T, D: distributions::Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    ///
    /// Statistically strong, tiny, and fully reproducible from a `u64`
    /// seed. Not the same stream as upstream `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the reference seeding procedure.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            Self { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// A non-deterministic generator seeded from the system clock and a
/// process-wide counter (used only by tests that *want* fresh entropy).
pub fn thread_rng() -> rngs::StdRng {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    SeedableRng::seed_from_u64(nanos ^ COUNTER.fetch_add(0x9E37_79B9, Ordering::Relaxed))
}

/// Distribution traits and the uniform-sampling machinery.
pub mod distributions {
    use super::Rng;

    /// A distribution over values of `T`.
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" distribution: `[0, 1)` floats, full-range integers,
    /// fair booleans.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Standard;

    impl Distribution<f64> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 random bits into [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
            // 24 random bits into [0, 1).
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Distribution<u32> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }

    impl Distribution<u64> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Distribution<usize> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
            rng.next_u64() as usize
        }
    }

    /// Uniform range sampling.
    pub mod uniform {
        use super::super::Rng;
        use std::ops::Range;

        /// Types that can be drawn uniformly from a range.
        pub trait SampleUniform: Sized {
            /// Draws uniformly from `[lo, hi)`.
            fn sample_range<R: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
        }

        /// Range-shaped arguments accepted by [`Rng::gen_range`].
        ///
        /// [`Rng::gen_range`]: super::super::Rng::gen_range
        pub trait SampleRange<T> {
            /// Draws one uniform sample from the range.
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
        }

        impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for Range<T> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
                assert!(self.start < self.end, "cannot sample empty range");
                T::sample_range(self.start, self.end, rng)
            }
        }

        /// Uniform `u64` below `n` via Lemire's widening-multiply method
        /// (debiased by rejection).
        fn uniform_below<R: Rng + ?Sized>(n: u64, rng: &mut R) -> u64 {
            debug_assert!(n > 0);
            loop {
                let x = rng.next_u64();
                let m = (x as u128).wrapping_mul(n as u128);
                let lo = m as u64;
                if lo < n {
                    // Reject the biased low region.
                    let threshold = n.wrapping_neg() % n;
                    if lo < threshold {
                        continue;
                    }
                }
                return (m >> 64) as u64;
            }
        }

        macro_rules! impl_uniform_int {
            ($($t:ty),*) => {$(
                impl SampleUniform for $t {
                    fn sample_range<R: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                        let span = (hi as u64).wrapping_sub(lo as u64);
                        lo.wrapping_add(uniform_below(span, rng) as $t)
                    }
                }
            )*};
        }
        impl_uniform_int!(usize, u64, u32, u16, u8, i64, i32);

        impl SampleUniform for f32 {
            fn sample_range<R: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let u = (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32);
                lo + (hi - lo) * u
            }
        }

        impl SampleUniform for f64 {
            fn sample_range<R: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                lo + (hi - lo) * u
            }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Random slice operations (the subset the workspace uses).
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Uniform in-place Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Moves a uniform random sample of `amount` elements to the
        /// front (partial Fisher–Yates) and returns
        /// `(sampled, remainder)`.
        fn partial_shuffle<R: Rng + ?Sized>(
            &mut self,
            rng: &mut R,
            amount: usize,
        ) -> (&mut [Self::Item], &mut [Self::Item]);

        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::distributions::uniform::SampleRange::sample_single(0..i + 1, rng);
                self.swap(i, j);
            }
        }

        fn partial_shuffle<R: Rng + ?Sized>(
            &mut self,
            rng: &mut R,
            amount: usize,
        ) -> (&mut [T], &mut [T]) {
            let amount = amount.min(self.len());
            for i in 0..amount {
                let j =
                    super::distributions::uniform::SampleRange::sample_single(i..self.len(), rng);
                self.swap(i, j);
            }
            self.split_at_mut(amount)
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i =
                    super::distributions::uniform::SampleRange::sample_single(0..self.len(), rng);
                Some(&self[i])
            }
        }
    }
}

/// Convenience re-export mirroring `rand::prelude`.
pub mod prelude {
    pub use super::distributions::Distribution;
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{thread_rng, Rng, SeedableRng};
}

// `Range` is referenced in doc positions above; silence the unused import
// lint without renaming.
#[allow(unused_imports)]
use Range as _Range;

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn seeded_streams_are_deterministic_and_distinct() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(0..17);
            assert!(x < 17);
            let f: f32 = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            lo |= x < 0.1;
            hi |= x > 0.9;
        }
        assert!(lo && hi, "samples should spread across [0, 1)");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "a 50-element shuffle is a no-op with prob ~1/50!"
        );
    }
}
