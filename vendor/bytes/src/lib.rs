//! Offline stand-in for `bytes`: [`Bytes`] / [`BytesMut`] backed by a
//! plain `Vec<u8>` plus the [`Buf`] / [`BufMut`] trait subset the
//! workspace's checkpoint serializer uses. No ref-counted zero-copy
//! splitting — the workspace never splits buffers.

#![deny(missing_docs)]

use std::ops::Deref;

/// An immutable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// Copies the slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self {
            data: data.to_vec(),
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self { data }
    }
}

/// A growable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with `cap` bytes reserved.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Sequential reads from a byte source (little-endian subset).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Skips `cnt` bytes.
    ///
    /// # Panics
    /// Panics if fewer than `cnt` bytes remain.
    fn advance(&mut self, cnt: usize);

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Reads a little-endian `u32`.
    ///
    /// # Panics
    /// Panics if fewer than 4 bytes remain.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(raw)
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Panics
    /// Panics if fewer than 8 bytes remain.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(raw)
    }

    /// Reads a little-endian `f32`.
    ///
    /// # Panics
    /// Panics if fewer than 4 bytes remain.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }

    fn chunk(&self) -> &[u8] {
        self
    }
}

/// Sequential writes to a byte sink (little-endian subset).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_u32_f32() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_slice(b"HDR!");
        buf.put_u32_le(7);
        buf.put_f32_le(-2.5);
        let frozen = buf.freeze();
        let mut cursor: &[u8] = &frozen;
        assert_eq!(&cursor[..4], b"HDR!");
        cursor.advance(4);
        assert_eq!(cursor.get_u32_le(), 7);
        assert_eq!(cursor.get_f32_le(), -2.5);
        assert_eq!(cursor.remaining(), 0);
    }
}
