//! Offline stand-in for `serde_json`: the [`Value`] tree, the [`json!`]
//! macro, and [`to_string_pretty`] — the surface the bench harness uses
//! to emit machine-readable result rows.
//!
//! Divergences from upstream: the object [`Map`] preserves insertion
//! order (upstream's default sorts keys), numbers are stored as `f64`,
//! and there is no deserialization.

#![deny(missing_docs)]

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`; integral values print without
    /// a decimal point).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

/// A JSON object: string keys to values, insertion-ordered.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// An empty object.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts `value` under `key`, replacing and returning any
    /// previous value for that key.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Looks up `key`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the object is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

/// Serialization error. The stub serializer cannot actually fail; the
/// type exists so call sites keep their `Result` handling.
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("JSON serialization error")
    }
}

impl std::error::Error for Error {}

/// Conversion into a [`Value`], used by the [`json!`] macro. Taking
/// `&self` mirrors upstream `json!`, which serializes interpolated
/// expressions by reference (so `json!({"xs": xs})` does not move `xs`).
pub trait ToJson {
    /// The JSON representation of `self`.
    fn to_json(&self) -> Value;
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::String(self.clone())
    }
}

macro_rules! impl_to_json_number {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
    )*};
}
impl_to_json_number!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

/// Builds a [`Value`] from JSON-shaped syntax, interpolating Rust
/// expressions by reference. Subset of upstream `json!`: object values
/// may be nested `{...}` / `[...]` literals or plain expressions, but
/// not expressions that *start* with a brace or bracket.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($entries:tt)* }) => {{
        #[allow(unused_mut)]
        let mut map = $crate::Map::new();
        $crate::json_entries!(map; $($entries)*);
        $crate::Value::Object(map)
    }};
    ([ $($elems:tt)* ]) => {{
        #[allow(unused_mut, clippy::vec_init_then_push)]
        let items = {
            let mut items: Vec<$crate::Value> = Vec::new();
            $crate::json_elems!(items; $($elems)*);
            items
        };
        $crate::Value::Array(items)
    }};
    ($other:expr) => { $crate::ToJson::to_json(&$other) };
}

/// Internal: munches `key: value` pairs for [`json!`] objects.
#[macro_export]
#[doc(hidden)]
macro_rules! json_entries {
    ($map:ident;) => {};
    ($map:ident; $key:tt : null $(, $($rest:tt)*)?) => {
        $map.insert(($key).to_string(), $crate::Value::Null);
        $crate::json_entries!($map; $($($rest)*)?);
    };
    ($map:ident; $key:tt : { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $map.insert(($key).to_string(), $crate::json!({ $($inner)* }));
        $crate::json_entries!($map; $($($rest)*)?);
    };
    ($map:ident; $key:tt : [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $map.insert(($key).to_string(), $crate::json!([ $($inner)* ]));
        $crate::json_entries!($map; $($($rest)*)?);
    };
    ($map:ident; $key:tt : $value:expr , $($rest:tt)*) => {
        $map.insert(($key).to_string(), $crate::ToJson::to_json(&$value));
        $crate::json_entries!($map; $($rest)*);
    };
    ($map:ident; $key:tt : $value:expr) => {
        $map.insert(($key).to_string(), $crate::ToJson::to_json(&$value));
    };
}

/// Internal: munches elements for [`json!`] arrays.
#[macro_export]
#[doc(hidden)]
macro_rules! json_elems {
    ($items:ident;) => {};
    ($items:ident; null $(, $($rest:tt)*)?) => {
        $items.push($crate::Value::Null);
        $crate::json_elems!($items; $($($rest)*)?);
    };
    ($items:ident; { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $items.push($crate::json!({ $($inner)* }));
        $crate::json_elems!($items; $($($rest)*)?);
    };
    ($items:ident; [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $items.push($crate::json!([ $($inner)* ]));
        $crate::json_elems!($items; $($($rest)*)?);
    };
    ($items:ident; $value:expr , $($rest:tt)*) => {
        $items.push($crate::ToJson::to_json(&$value));
        $crate::json_elems!($items; $($rest)*);
    };
    ($items:ident; $value:expr) => {
        $items.push($crate::ToJson::to_json(&$value));
    };
}

/// Serializes `value` as pretty-printed JSON with 2-space indentation.
pub fn to_string_pretty(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, value, 0);
    Ok(out)
}

/// Serializes `value` as compact single-line JSON.
pub fn to_string(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_compact(&mut out, value);
    Ok(out)
}

impl fmt::Display for Value {
    /// Compact single-line JSON, so `println!("{}", json!({...}))` emits
    /// one machine-readable row.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_compact(&mut out, self);
        f.write_str(&out)
    }
}

fn write_compact(out: &mut String, value: &Value) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(out, item);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (key, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, key);
                out.push(':');
                write_compact(out, item);
            }
            out.push('}');
        }
    }
}

fn write_value(out: &mut String, value: &Value, indent: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent + 1);
                write_value(out, item, indent + 1);
            }
            newline_indent(out, indent);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent + 1);
                write_string(out, k);
                out.push_str(": ");
                write_value(out, v, indent + 1);
            }
            newline_indent(out, indent);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_number(out: &mut String, n: f64) {
    use fmt::Write;
    if !n.is_finite() {
        // JSON has no NaN/Infinity; upstream errors, we degrade to null.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 1e15 {
        write!(out, "{}", n as i64).expect("write to String");
    } else {
        write!(out, "{n}").expect("write to String");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write;
                write!(out, "\\u{:04x}", c as u32).expect("write to String");
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_builds_nested_values() {
        let xs = vec![1.5f64, 2.0];
        let name = String::from("acm");
        let v = json!({
            "dataset": name,
            "count": 3usize,
            "ok": true,
            "series": xs,
            "fit": { "slope": 0.5, "r2": 0.99 },
        });
        match &v {
            Value::Object(m) => {
                assert_eq!(m.get("dataset"), Some(&Value::String("acm".into())));
                assert_eq!(m.get("count"), Some(&Value::Number(3.0)));
                assert!(matches!(m.get("fit"), Some(Value::Object(_))));
                assert_eq!(
                    m.get("series"),
                    Some(&Value::Array(vec![Value::Number(1.5), Value::Number(2.0)]))
                );
            }
            other => panic!("expected object, got {other:?}"),
        }
        // Interpolation borrows: `xs` and `name` stay usable. (Checked
        // by the `json!` above compiling with these later uses.)
        assert_eq!(xs.len(), 2);
        assert_eq!(name, "acm");
    }

    #[test]
    fn pretty_printing_is_valid_json() {
        let v = json!({ "a": 1, "b": [true, null, "x\"y"], "c": {} });
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\"a\": 1"));
        assert!(s.contains("\\\"")); // escaped quote survived
        assert!(s.ends_with('}'));
    }

    #[test]
    fn integral_floats_print_without_decimal() {
        let mut s = String::new();
        write_number(&mut s, 10_000.0);
        assert_eq!(s, "10000");
        s.clear();
        write_number(&mut s, 0.25);
        assert_eq!(s, "0.25");
        s.clear();
        write_number(&mut s, f64::NAN);
        assert_eq!(s, "null");
    }
}
