//! Offline stand-in for `rand_distr`: just [`StandardNormal`] and the
//! re-exported [`Distribution`] trait, which is all the workspace uses.
//!
//! Sampling uses the Box–Muller transform rather than upstream's
//! ziggurat tables, so exact values differ from the real crate while the
//! distribution itself is identical.

#![deny(missing_docs)]

pub use rand::distributions::Distribution;
use rand::Rng;

/// The standard normal distribution `N(0, 1)`.
#[derive(Clone, Copy, Debug, Default)]
pub struct StandardNormal;

impl StandardNormal {
    /// One Box–Muller draw in `f64`.
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // u1 in (0, 1] so ln(u1) is finite; u2 in [0, 1).
        let u1 = 1.0 - (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let u2 = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

impl Distribution<f64> for StandardNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        Self::draw(rng)
    }
}

impl Distribution<f32> for StandardNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        Self::draw(rng) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn moments_are_standard_normal() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| StandardNormal.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
        assert!(xs.iter().all(|x| x.is_finite()));
    }
}
