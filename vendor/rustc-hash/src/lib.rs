//! Offline stand-in for `rustc-hash`: the Fx hash function (a faithful
//! port of the classic rustc/Firefox algorithm) plus the `FxHashMap` /
//! `FxHashSet` aliases the workspace uses.

#![deny(missing_docs)]

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The Fx hasher: fast multiply-rotate hashing for small keys.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_set_basics() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        let mut s: FxHashSet<(u16, u16)> = FxHashSet::default();
        assert!(s.insert((3, 4)));
        assert!(!s.insert((3, 4)));
    }

    #[test]
    fn hashing_is_deterministic() {
        let h = |x: u64| {
            let mut hasher = FxHasher::default();
            hasher.write_u64(x);
            hasher.finish()
        };
        assert_eq!(h(99), h(99));
        assert_ne!(h(99), h(100));
    }
}
