//! Offline placeholder for `serde`.
//!
//! The workspace declares `serde` as an (optional, never-enabled)
//! dependency of `widen-tensor` and a direct dependency of
//! `widen-bench`, but no code path currently uses serde traits — JSON
//! output goes through the vendored `serde_json::Value` directly. This
//! stub exists so those declarations resolve offline; the marker traits
//! below keep any future `T: Serialize` bounds compilable.

#![deny(missing_docs)]

/// Marker for serializable types (no-op stub).
pub trait Serialize {}

/// Marker for deserializable types (no-op stub).
pub trait Deserialize<'de> {}
