#!/usr/bin/env python3
"""Fills EXPERIMENTS.md's MEASURED_* placeholders from results/*.json.

Usage: python3 scripts/fill_experiments.py [results_dir] [experiments_md]
Idempotent only in the sense that placeholders are consumed once; re-run
on a fresh EXPERIMENTS.md template if results change.
"""
import json
import sys
from pathlib import Path

results = Path(sys.argv[1] if len(sys.argv) > 1 else "results")
md_path = Path(sys.argv[2] if len(sys.argv) > 2 else "EXPERIMENTS.md")
md = md_path.read_text()


def load(name):
    p = results / f"{name}.json"
    return json.loads(p.read_text()) if p.exists() else None


def replace(placeholder, text):
    global md
    md = md.replace(placeholder, text if text else "_(run not completed in session budget — regenerate with the command above)_")


# ---- Table 1 ----
t1 = load("table1_datasets")
if t1:
    fmt = lambda r: (f"{r['nodes']:,} nodes / {r['node_types']} types / "
                     f"{r['edges']:,} edges / {r['edge_types']} edge types / "
                     f"{r['features']} feats / {r['class_labels']} classes")
    by = {r["dataset"]: r for r in t1}
    replace("MEASURED_T1_ACM", fmt(by["acm-like"]))
    replace("MEASURED_T1_DBLP", fmt(by["dblp-like"]))
    replace("MEASURED_T1_YELP", fmt(by["yelp-like"]))

# ---- Table 2 ----
t2 = load("table2_transductive")
if t2:
    methods = []
    for r in t2:
        if r["method"] not in methods:
            methods.append(r["method"])
    datasets = ["acm-like", "dblp-like", "yelp-like"]
    lines = ["| Method | acm-like | dblp-like | yelp-like |", "|---|---|---|---|"]
    for m in methods:
        row = [m if m != "WIDEN" else "**WIDEN**"]
        for d in datasets:
            hits = [r for r in t2 if r["method"] == m and r["dataset"] == d and r["fraction"] == 1.0]
            row.append(f"{hits[0]['mean']:.4f}" if hits else "–")
        lines.append("| " + " | ".join(row) + " |")
    replace("MEASURED_T2", "\n".join(lines))

# ---- Table 3 ----
t3 = load("table3_inductive")
if t3:
    methods = []
    for r in t3:
        if r["method"] not in methods:
            methods.append(r["method"])
    datasets = ["acm-like", "dblp-like", "yelp-like"]
    lines = ["| Method | acm-like | dblp-like | yelp-like |", "|---|---|---|---|"]
    for m in methods:
        row = [m if m != "WIDEN" else "**WIDEN**"]
        for d in datasets:
            hits = [r for r in t3 if r["method"] == m and r["dataset"] == d]
            row.append(f"{hits[0]['mean']:.4f}" if hits and hits[0]["samples"] else "–")
        lines.append("| " + " | ".join(row) + " |")
    replace("MEASURED_T3", "\n".join(lines))

# ---- Table 4 ----
t4 = load("table4_ablation")
if t4:
    variants = []
    for r in t4:
        if r["variant"] not in variants:
            variants.append(r["variant"])
    datasets = ["acm-like", "dblp-like", "yelp-like"]
    lines = ["| Architecture | acm-like | dblp-like | yelp-like |", "|---|---|---|---|"]
    for v in variants:
        row = [v]
        for d in datasets:
            hits = [r for r in t4 if r["variant"] == v and r["dataset"] == d]
            if hits:
                mark = " ↓" if hits[0]["severe_drop"] else ""
                row.append(f"{hits[0]['mean']:.4f}{mark}")
            else:
                row.append("–")
        lines.append("| " + " | ".join(row) + " |")
    replace("MEASURED_T4", "\n".join(lines))

# ---- Figure 3 ----
f3 = load("fig3_tsne")
if f3:
    lines = ["| Dataset | silhouette (embedding) | silhouette (t-SNE 2-D) | points |", "|---|---|---|---|"]
    for name, block in f3.items():
        lines.append(
            f"| {name} | {block['silhouette_embedding']:.3f} | "
            f"{block['silhouette_2d']:.3f} | {len(block['points'])} |")
    replace("MEASURED_F3", "\n".join(lines))

# ---- Figure 4 ----
f4 = load("fig4_efficiency")
if f4:
    datasets = sorted({r["dataset"] for r in f4})
    lines = ["| Method | " + " | ".join(f"{d} s/epoch | {d} F1@10" for d in datasets) + " |",
             "|---|" + "---|" * (2 * len(datasets))]
    methods = []
    for r in f4:
        if r["method"] not in methods:
            methods.append(r["method"])
    for m in methods:
        row = [m if m != "WIDEN" else "**WIDEN**"]
        for d in datasets:
            hits = [r for r in f4 if r["method"] == m and r["dataset"] == d]
            if hits:
                row.append(f"{hits[0]['secs_per_epoch']:.3f}")
                row.append(f"{hits[0]['f1_after_10_epochs']:.4f}")
            else:
                row.extend(["–", "–"])
        lines.append("| " + " | ".join(row) + " |")
    replace("MEASURED_F4", "\n".join(lines))

# ---- Figure 5 ----
f5 = load("fig5_scalability")
if f5:
    pts = " · ".join(f"{p['ratio']:.1f}→{p['train_secs']:.1f}s" for p in f5["points"])
    fit = f5["fit"]
    replace(
        "MEASURED_F5",
        f"{pts}\n\nLinear fit: `time ≈ {fit['slope']:.2f}·ratio + {fit['intercept']:.2f}`, "
        f"**R² = {fit['r2']:.4f}** — the paper's \"approximately linear\" claim reproduces.")

# ---- Figure 6 ----
f6 = load("fig6_sensitivity")
if f6:
    lines = []
    for name, block in f6.items():
        parts = []
        for param, series in block.items():
            vals = ", ".join(f"{s['value']}→{s['f1']:.3f}" for s in series)
            parts.append(f"`{param}`: {vals}")
        lines.append(f"* **{name}** — " + "; ".join(parts))
    replace("MEASURED_F6", "\n".join(lines))

md_path.write_text(md)
print("filled placeholders; remaining:",
      [w for w in ("MEASURED_T1", "MEASURED_T2", "MEASURED_T3", "MEASURED_T4",
                   "MEASURED_F3", "MEASURED_F4", "MEASURED_F5", "MEASURED_F6")
       if w in md])
