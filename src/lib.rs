//! # widen — umbrella crate
//!
//! Re-exports every sub-crate of the WIDEN reproduction so applications can
//! depend on a single crate:
//!
//! * [`tensor`] — dense 2-D tensors + reverse-mode autograd + optimizers.
//! * [`graph`] — heterogeneous graph storage, subgraphs, partitioning.
//! * [`sampling`] — wide neighbour sets and deep random walks.
//! * [`data`] — synthetic ACM/DBLP/Yelp-like dataset generators and splits.
//! * [`core`] — the WIDEN model, downsampling and trainer.
//! * [`baselines`] — Node2Vec, GCN, FastGCN, GraphSAGE, GAT, GTN, HAN, HGT.
//! * [`eval`] — F1, paired t-tests, t-SNE, silhouette, timing.
//! * [`serve`] — concurrent micro-batched TCP inference service.
//!
//! See `examples/quickstart.rs` for an end-to-end walkthrough.

#![deny(missing_docs)]

pub use widen_baselines as baselines;
pub use widen_core as core;
pub use widen_data as data;
pub use widen_eval as eval;
pub use widen_graph as graph;
pub use widen_sampling as sampling;
pub use widen_serve as serve;
pub use widen_tensor as tensor;
