//! Differential tests pinning the gradient-buffer pool: a tape with a warm
//! pool must produce bit-identical gradients to a pool-disabled tape, reuse
//! must actually happen across backward passes, and `Tape::reset` must not
//! leak buffers past the pool's per-shape cap.

use widen::core::{NodeState, WidenConfig, WidenModel};
use widen::data::{acm_like, Scale};
use widen::graph::HeteroGraph;
use widen::tensor::{Tape, Tensor, MAX_BUFFERS_PER_SHAPE};

fn tiny_config() -> WidenConfig {
    let mut c = WidenConfig::small();
    c.d = 16;
    c.n_w = 5;
    c.n_d = 5;
    c.phi = 2;
    c.epochs = 3;
    c.batch_size = 16;
    c
}

fn sample_states(model: &WidenModel, graph: &HeteroGraph, nodes: &[u32]) -> Vec<NodeState> {
    nodes
        .iter()
        .map(|&v| model.sample_state(graph, v, 5))
        .collect()
}

/// Runs the batched forward+backward on `tape`, returning per-parameter
/// gradients in canonical order.
fn grads_on(
    tape: &mut Tape,
    model: &WidenModel,
    graph: &HeteroGraph,
    states: &[NodeState],
    labels: &[usize],
) -> Vec<Tensor> {
    let refs: Vec<&NodeState> = states.iter().collect();
    let pv = model.insert_params(tape);
    let fw = model.forward_batch(tape, &pv, graph, &refs);
    let loss = tape.softmax_cross_entropy(fw.logits, labels);
    tape.backward(loss);
    pv.pairs(model.ids())
        .into_iter()
        .map(|(id, var)| {
            let shape = model.params.get(id).shape();
            tape.grad(var)
                .cloned()
                .unwrap_or_else(|| Tensor::zeros(shape.0, shape.1))
        })
        .collect()
}

#[test]
fn pooled_gradients_match_pool_disabled_path_across_two_passes() {
    let dataset = acm_like(Scale::Smoke, 21);
    let nodes: Vec<u32> = dataset.graph.labeled_nodes()[..24].to_vec();
    let labels: Vec<usize> = nodes
        .iter()
        .map(|&v| dataset.graph.label(v).unwrap() as usize)
        .collect();
    let model = WidenModel::for_graph(&dataset.graph, tiny_config());
    let states = sample_states(&model, &dataset.graph, &nodes);

    // Reference: pool pinned off — every gradient heap-allocates.
    let mut tape_ref = Tape::new();
    tape_ref.disable_pool();
    let grads_ref = grads_on(&mut tape_ref, &model, &dataset.graph, &states, &labels);
    let ref_stats = tape_ref.pool_stats();
    assert_eq!(ref_stats.hits, 0, "disabled pool must never serve a buffer");
    assert_eq!(ref_stats.resident_buffers, 0);

    // Pass 1 on a pooled tape fills the free lists (all misses); pass 2 on
    // a fresh tape inheriting that pool runs warm (dirty buffers zeroed and
    // reused). Both must be bit-identical to the reference.
    let mut tape1 = Tape::new();
    let grads_cold = grads_on(&mut tape1, &model, &dataset.graph, &states, &labels);
    let pool = tape1.take_pool();

    let mut tape2 = Tape::new();
    tape2.install_pool(pool);
    let grads_warm = grads_on(&mut tape2, &model, &dataset.graph, &states, &labels);
    let warm_stats = tape2.pool_stats();
    assert!(
        warm_stats.hits > 0,
        "second pass on a warm pool must reuse buffers"
    );
    assert!(
        warm_stats.bytes_reused > 0,
        "reuse must be visible in the byte counter"
    );

    for ((cold, warm), reference) in grads_cold.iter().zip(&grads_warm).zip(&grads_ref) {
        assert_eq!(
            cold.as_slice(),
            reference.as_slice(),
            "cold pooled gradients must equal the pool-disabled path"
        );
        assert_eq!(
            warm.as_slice(),
            reference.as_slice(),
            "warm pooled gradients must equal the pool-disabled path"
        );
    }
}

#[test]
fn repeated_backward_on_one_tape_is_allocation_free_and_stable() {
    let mut tape = Tape::new();
    let a = tape.leaf(Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
    let b = tape.leaf(Tensor::from_rows(&[&[0.5, -1.0], &[2.0, 0.25]]));
    let c = tape.matmul(a, b);
    let r = tape.relu(c);
    let loss = tape.sum(r);

    tape.backward(loss);
    let first = tape.grad(a).unwrap().as_slice().to_vec();
    let after_first = tape.pool_stats();

    tape.backward(loss);
    let second = tape.grad(a).unwrap().as_slice().to_vec();
    let after_second = tape.pool_stats();

    assert_eq!(first, second, "re-running backward must be deterministic");
    assert_eq!(
        after_second.misses, after_first.misses,
        "second backward on the same tape must allocate nothing"
    );
    assert!(after_second.hits > after_first.hits);
}

#[test]
fn reset_recycles_gradients_without_leaking_past_the_cap() {
    let mut tape = Tape::new();
    for round in 0..(MAX_BUFFERS_PER_SHAPE + 8) {
        let a = tape.leaf(Tensor::full(4, 4, round as f32 + 1.0));
        let loss = tape.sum(a);
        tape.backward(loss);
        assert!(tape.grad(a).is_some());
        tape.reset();
        assert_eq!(tape.len(), 0, "reset must clear recorded nodes");
        assert!(tape.grad(a).is_none(), "reset must clear gradients");
    }
    let stats = tape.pool_stats();
    // Steady state: each round checks its 4×4 gradient and 1×1 loss seed
    // back in at reset and the next round reuses them, so residency stays
    // O(shapes) — far below the cap — no matter how many rounds ran.
    assert!(
        stats.resident_buffers <= 4,
        "pool must not grow across Tape::reset (resident: {})",
        stats.resident_buffers
    );
    assert!(
        stats.resident_buffers <= 2 * MAX_BUFFERS_PER_SHAPE as u64,
        "cap invariant violated"
    );
    assert!(stats.hits > 0, "rounds after the first must run warm");
    assert_eq!(stats.misses, 2, "only the first round may allocate");
}
