//! File-descriptor exhaustion against the accept path. Historically this
//! had three failure modes: `accept` returning `EMFILE` hot-looped the
//! acceptor at 100% CPU, a failed handler-thread spawn panicked the
//! acceptor, and shutdown woke the accept loop by connecting to the
//! server's own address — impossible when the fd table is full. The
//! reactor must instead back off on accept errors (counting them), keep
//! serving established connections, resume accepting once descriptors
//! free up, and shut down via its self-pipe with the table still full.
//!
//! One `#[test]` only: the fd table is process-wide state, so this
//! scenario cannot share a binary with other tests.

#![cfg(unix)]

use std::io::{Read, Write};
use std::net::TcpStream;
use std::os::fd::AsRawFd;
use std::sync::mpsc;
use std::thread;
use std::time::{Duration, Instant};

use widen::core::{WidenConfig, WidenModel};
use widen::data::{acm_like, Scale};
use widen::serve::protocol::{decode_response, encode_request, FrameReader, Request, Response};
use widen::serve::{Client, ModelRegistry, ServeConfig, Server};

extern "C" {
    fn dup(fd: i32) -> i32;
    fn close(fd: i32) -> i32;
}

/// Duplicates `fd` until the process hits EMFILE, returning the dups.
fn exhaust_fd_table(fd: i32) -> Vec<i32> {
    let mut dups = Vec::new();
    loop {
        let d = unsafe { dup(fd) };
        if d < 0 {
            break;
        }
        dups.push(d);
    }
    dups
}

fn release(dups: &mut Vec<i32>, n: usize) {
    for _ in 0..n {
        if let Some(d) = dups.pop() {
            unsafe { close(d) };
        }
    }
}

#[test]
fn emfile_on_accept_backs_off_keeps_serving_and_shutdown_still_works() {
    let mut config = WidenConfig::small();
    config.d = 8;
    config.n_w = 4;
    config.n_d = 4;
    config.phi = 1;
    let dataset = acm_like(Scale::Smoke, 90);
    let model = WidenModel::for_graph(&dataset.graph, config.clone());
    let registry =
        ModelRegistry::from_checkpoint(dataset.graph.clone(), config, &model.save_weights())
            .expect("checkpoint loads");
    let handle = Server::bind(registry, ServeConfig::default(), "127.0.0.1:0").unwrap();
    let addr = handle.local_addr();

    // An established connection from before the pressure.
    let mut client_a = Client::connect(addr).expect("connect");
    client_a.embed(&[0, 1], 2).expect("served before pressure");

    // Fill the process fd table (any descriptor works as a dup source;
    // stdin may be closed under test harnesses, so use /dev/null), then
    // free exactly one slot so the reactor's accept() itself fails with
    // EMFILE — the kernel completes the TCP handshake in the backlog
    // regardless.
    let dup_src = std::fs::File::open("/dev/null").expect("open /dev/null");
    let mut dups = exhaust_fd_table(dup_src.as_raw_fd());
    assert!(dups.len() > 100, "fd table did not fill (limit too high?)");
    release(&mut dups, 1);
    let mut client_b_stream = TcpStream::connect(addr).expect("handshake via backlog");
    client_b_stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();

    // Give the reactor a few backoff windows. A busy spin would record
    // millions of accept errors here; backoff records a handful.
    thread::sleep(Duration::from_millis(250));
    let errors_mid = handle.stats().accept_errors;
    assert!(errors_mid >= 1, "EMFILE accept failure must be counted");
    assert!(
        errors_mid <= 50,
        "accept error count {errors_mid} implies a busy spin, not a backoff"
    );

    // Established connections are still served while accepts fail.
    client_a
        .embed(&[2, 3], 2)
        .expect("served under fd pressure");

    // Free descriptors: the pending connection must now be accepted and
    // served. Drive it with raw frames (a `Client` would burn more fds).
    release(&mut dups, 64);
    let frame = encode_request(&Request::Embed {
        id: 9,
        seed: 2,
        nodes: vec![4, 5],
    });
    client_b_stream
        .write_all(&frame)
        .expect("send after recovery");
    let mut reader = FrameReader::new();
    let mut buf = [0u8; 4096];
    let body = loop {
        if let Some(body) = reader.next_frame().expect("clean frame") {
            break body;
        }
        let n = client_b_stream.read(&mut buf).expect("read response");
        assert!(n > 0, "server closed backlogged conn instead of serving it");
        reader.push(&buf[..n]);
    };
    match decode_response(&body).expect("decodes") {
        Response::Embeddings { id, .. } => assert_eq!(id, 9, "accept path recovered"),
        other => panic!("expected embeddings after recovery, got {other:?}"),
    }

    // Re-flood and shut down with the table full: the self-pipe wake
    // needs no new descriptor, so this must not hang (the old front end
    // woke its accept loop via TcpStream::connect(self.addr), which
    // cannot succeed here). Joining through a channel bounds the hang.
    dups.extend(exhaust_fd_table(dup_src.as_raw_fd()));
    let (done_tx, done_rx) = mpsc::channel();
    let started = Instant::now();
    thread::spawn(move || {
        let stats = handle.shutdown();
        let _ = done_tx.send(stats);
    });
    let stats = done_rx
        .recv_timeout(Duration::from_secs(20))
        .expect("shutdown hung under fd exhaustion");
    assert!(
        started.elapsed() < Duration::from_secs(20),
        "shutdown too slow under fd pressure"
    );
    assert!(stats.accept_errors >= 1);
    assert!(stats.requests >= 3);

    for d in dups {
        unsafe { close(d) };
    }
}
