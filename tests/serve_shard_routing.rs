//! Integration: shard-routed serving. A registry built with
//! `with_shards(k)` answers every wire request from the owning shard's
//! halo-expanded snapshot — and because the halo radius is the deep-walk
//! length and sampling streams are keyed by global node ids, the routed
//! answers are bit-identical to unsharded full-graph serving. Ingest
//! routes new nodes by their edge endpoints' ownership and stays
//! self-consistent over the wire.

use widen::core::{WidenConfig, WidenModel};
use widen::data::{acm_like, Scale};
use widen::graph::{EdgeTypeId, NodeTypeId};
use widen::serve::{Client, ModelRegistry, ServeConfig, Server};

fn tiny_config() -> WidenConfig {
    let mut c = WidenConfig::small();
    c.d = 8;
    c.n_w = 4;
    c.n_d = 4;
    c.phi = 1;
    c
}

fn bits(row: &[f32]) -> Vec<u32> {
    row.iter().map(|v| v.to_bits()).collect()
}

#[test]
fn sharded_server_matches_full_graph_answers_bitwise() {
    let dataset = acm_like(Scale::Smoke, 80);
    let model = WidenModel::for_graph(&dataset.graph, tiny_config());

    // Offline full-graph oracle with the same frozen weights.
    let nodes: Vec<u32> = (0..dataset.graph.num_nodes() as u32).step_by(13).collect();
    let seed = 17;
    let want_rows = model.embed_nodes(&dataset.graph, &nodes, seed);
    let want_labels: Vec<u32> = model
        .predict_ensemble(&dataset.graph, &nodes, seed, 3)
        .iter()
        .map(|&l| l as u32)
        .collect();

    let registry = ModelRegistry::from_model(dataset.graph.clone(), model).with_shards(3);
    assert_eq!(registry.num_shards(), 3);
    let handle = Server::bind(registry, ServeConfig::default(), "127.0.0.1:0").unwrap();
    let mut client = Client::connect(handle.local_addr()).expect("connect");

    let rows = client.embed(&nodes, seed).expect("embed succeeds");
    for (i, row) in rows.iter().enumerate() {
        assert_eq!(
            bits(row),
            bits(want_rows.row(i)),
            "shard-routed embedding diverged at node {}",
            nodes[i]
        );
    }
    let labels = client.classify(&nodes, seed, 3).expect("classify succeeds");
    assert_eq!(labels, want_labels, "shard-routed labels diverged");

    // Every partition-time node ran on its owning shard, never a fallback.
    let routed = handle.metrics().counter("serve_shard_routed_jobs_total");
    let fallback = handle.metrics().counter("serve_shard_fallback_jobs_total");
    assert!(routed.get() >= nodes.len() as u64, "jobs were not routed");
    assert_eq!(fallback.get(), 0, "no core node should need a fallback");
    handle.shutdown();
}

#[test]
fn sharded_wire_ingest_routes_and_stays_consistent() {
    let dataset = acm_like(Scale::Smoke, 81);
    let feat_dim = dataset.graph.feature_dim();
    let model = WidenModel::for_graph(&dataset.graph, tiny_config());

    let registry = ModelRegistry::from_model(dataset.graph.clone(), model).with_shards(2);
    // Find one node per shard to build single-owner and spanning edges.
    let (assign_a, assign_b) = {
        let st = registry.read();
        let map = st.shards().expect("sharded registry");
        let home = map.home();
        let n = dataset.graph.num_nodes() as u32;
        let a = (0..n).find(|&v| map.owner(v) != Some(home)).unwrap();
        let b = (0..n).find(|&v| map.owner(v) == Some(home)).unwrap();
        (a, b)
    };

    // Oracle for the single-owner ingest: all endpoints live in one shard,
    // so the snapshot holds the new node's entire receptive field and the
    // routed embedding must equal the full-graph forward bit-for-bit.
    let model = {
        let st = registry.read();
        let mut oracle = dataset.graph.clone();
        let id = oracle
            .add_node_with_edges(
                NodeTypeId(0),
                vec![0.25; feat_dim],
                None,
                &[(assign_a, EdgeTypeId(0))],
            )
            .expect("valid node");
        let want = st.model().embed_requests(&oracle, &[(id, 41)]);
        (id, want.row(0).to_vec())
    };
    let (oracle_id, oracle_row) = model;

    let handle = Server::bind(registry, ServeConfig::default(), "127.0.0.1:0").unwrap();
    let mut client = Client::connect(handle.local_addr()).expect("connect");

    // Single-owner ingest: routed to the endpoint's shard, oracle-exact.
    let (first, row_first) = client
        .ingest(0, &vec![0.25; feat_dim], None, &[(assign_a, 0)], 41)
        .expect("ingest succeeds");
    assert_eq!(first, oracle_id);
    assert_eq!(
        bits(&row_first),
        bits(&oracle_row),
        "single-owner ingest must equal the full-graph forward"
    );
    // A follow-up wire embed routes to the same shard and agrees.
    let rows = client.embed(&[first], 41).expect("embed succeeds");
    assert_eq!(bits(&rows[0]), bits(&row_first));

    // Spanning ingest: endpoints in both shards fall back to the home
    // shard. The warm embedding stays self-consistent with later embeds
    // even though cross-shard snapshot edges may be dropped.
    let (second, row_second) = client
        .ingest(
            0,
            &vec![-0.5; feat_dim],
            None,
            &[(assign_a, 0), (assign_b, 0)],
            42,
        )
        .expect("spanning ingest succeeds");
    let rows = client.embed(&[second], 42).expect("embed succeeds");
    assert_eq!(
        bits(&rows[0]),
        bits(&row_second),
        "spanning ingest must stay self-consistent over the wire"
    );

    // And the ingested nodes classify without error on their shards.
    let labels = client
        .classify(&[first, second], 7, 2)
        .expect("classify succeeds");
    assert_eq!(labels.len(), 2);

    let stats = handle.shutdown();
    assert_eq!(stats.ingests, 2);
}
