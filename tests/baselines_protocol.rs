//! Integration: every baseline honours the shared `NodeClassifier`
//! protocol on a real generated dataset, transductively and (where
//! supported) inductively.

use widen::baselines::{all_baselines, BaselineConfig};
use widen::data::{acm_like, Scale};
use widen::eval::micro_f1;
use widen::graph::NodeId;

fn config() -> BaselineConfig {
    BaselineConfig {
        epochs: 8,
        learning_rate: 1e-2,
        ..Default::default()
    }
}

#[test]
fn all_baselines_fit_predict_and_embed() {
    let dataset = acm_like(Scale::Smoke, 31);
    let train = &dataset.transductive.train;
    let test: Vec<NodeId> = dataset.transductive.test[..40].to_vec();
    let truth: Vec<usize> = test
        .iter()
        .map(|&v| dataset.graph.label(v).unwrap() as usize)
        .collect();
    for mut baseline in all_baselines(&config()) {
        baseline.fit(&dataset.graph, train);
        let preds = baseline.predict(&dataset.graph, &test);
        assert_eq!(preds.len(), test.len(), "{}", baseline.name());
        assert!(
            preds.iter().all(|&p| p < dataset.graph.num_classes()),
            "{} emitted an out-of-range class",
            baseline.name()
        );
        let f1 = micro_f1(&truth, &preds);
        assert!(f1 > 0.34, "{} is at or below chance: {f1}", baseline.name());
        let emb = baseline.embed(&dataset.graph, &test[..5]);
        assert_eq!(emb.rows(), 5, "{}", baseline.name());
        assert!(emb.all_finite(), "{}", baseline.name());
    }
}

#[test]
fn exactly_one_baseline_is_transductive_only() {
    let methods = all_baselines(&config());
    let transductive_only: Vec<&str> = methods
        .iter()
        .filter(|m| !m.supports_inductive())
        .map(|m| m.name())
        .collect();
    assert_eq!(
        transductive_only,
        vec!["Node2Vec"],
        "§4.6 excludes exactly Node2Vec"
    );
}

#[test]
fn inductive_capable_baselines_handle_unseen_nodes() {
    let dataset = acm_like(Scale::Smoke, 32);
    let reduced = dataset.graph.without_nodes(&dataset.inductive.test);
    let train: Vec<NodeId> = dataset
        .inductive
        .train
        .iter()
        .filter_map(|&v| reduced.mapping.to_new(v))
        .collect();
    for mut baseline in all_baselines(&config()) {
        if !baseline.supports_inductive() {
            continue;
        }
        baseline.fit(&reduced.graph, &train);
        let preds = baseline.predict(&dataset.graph, &dataset.inductive.test);
        assert_eq!(
            preds.len(),
            dataset.inductive.test.len(),
            "{} failed on unseen nodes",
            baseline.name()
        );
    }
}

#[test]
fn baseline_count_matches_table2_rows() {
    // Table 2 lists eight baselines plus WIDEN.
    assert_eq!(all_baselines(&config()).len(), 8);
}
