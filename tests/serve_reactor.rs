//! Contracts of the event-driven serve front end: pipelined out-of-order
//! completion is bit-identical to sequential calls, admission control and
//! queue shedding answer typed `Overloaded` frames, idle connections cost
//! a poll entry rather than a thread (the soak), a slow-loris peer cannot
//! starve its neighbours, and shutdown never depends on connecting to the
//! server's own address.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::thread;
use std::time::{Duration, Instant};

use widen::core::{WidenConfig, WidenModel};
use widen::data::{acm_like, Scale};
use widen::serve::protocol::{decode_response, encode_request, FrameReader, Request, Response};
use widen::serve::{Client, ClientError, ModelRegistry, ServeConfig, ServeError, Server};

fn tiny_config() -> WidenConfig {
    let mut c = WidenConfig::small();
    c.d = 8;
    c.n_w = 4;
    c.n_d = 4;
    c.phi = 1;
    c
}

struct Fixture {
    model: WidenModel,
    graph: widen::graph::HeteroGraph,
}

fn fixture(seed: u64) -> Fixture {
    let dataset = acm_like(Scale::Smoke, seed);
    let model = WidenModel::for_graph(&dataset.graph, tiny_config());
    Fixture {
        model,
        graph: dataset.graph,
    }
}

fn registry_for(fx: &Fixture) -> ModelRegistry {
    let checkpoint = fx.model.save_weights();
    ModelRegistry::from_checkpoint(fx.graph.clone(), tiny_config(), &checkpoint)
        .expect("checkpoint loads")
}

/// Current thread count of this process, from /proc/self/status.
fn process_threads() -> usize {
    let status = std::fs::read_to_string("/proc/self/status").expect("proc status");
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .expect("Threads: line")
}

#[test]
fn pipelined_out_of_order_receive_is_bit_identical_to_sequential() {
    const REQUESTS: usize = 6;
    const ROUNDS: u32 = 2;

    let fx = fixture(80);
    let handle = Server::bind(
        registry_for(&fx),
        ServeConfig {
            workers: 1,
            max_batch: 16,
            max_wait_us: 2_000,
            ..ServeConfig::default()
        },
        "127.0.0.1:0",
    )
    .unwrap();

    // Oracle: the serial model answers for every request.
    let mut want_rows = Vec::new();
    let mut want_labels = Vec::new();
    for r in 0..REQUESTS {
        let nodes: Vec<u32> = (r as u32 * 3..r as u32 * 3 + 5).collect();
        let seed = 500 + r as u64;
        let emb = fx.model.embed_nodes(&fx.graph, &nodes, seed);
        want_rows.push(
            (0..nodes.len())
                .map(|i| emb.row(i).to_vec())
                .collect::<Vec<_>>(),
        );
        want_labels.push(
            fx.model
                .predict_ensemble(&fx.graph, &nodes, seed, ROUNDS as usize)
                .into_iter()
                .map(|l| l as u32)
                .collect::<Vec<u32>>(),
        );
    }

    // Pipeline everything on one socket, then receive in *reverse* order:
    // every response must still land on its own request, bit-identical to
    // the oracle, no matter in which order the server's batches finished.
    let mut client = Client::connect(handle.local_addr()).expect("connect");
    let mut embed_ids = Vec::new();
    let mut classify_ids = Vec::new();
    for r in 0..REQUESTS {
        let nodes: Vec<u32> = (r as u32 * 3..r as u32 * 3 + 5).collect();
        let seed = 500 + r as u64;
        embed_ids.push(client.send_embed(&nodes, seed).expect("send embed"));
        classify_ids.push(
            client
                .send_classify(&nodes, seed, ROUNDS)
                .expect("send classify"),
        );
    }
    for r in (0..REQUESTS).rev() {
        let labels = client
            .recv_classify(classify_ids[r])
            .expect("recv classify");
        assert_eq!(labels, want_labels[r], "request {r}: labels diverged");
        let rows = client.recv_embed(embed_ids[r]).expect("recv embed");
        for (got, want) in rows.iter().zip(&want_rows[r]) {
            let got_bits: Vec<u32> = got.iter().map(|v| v.to_bits()).collect();
            let want_bits: Vec<u32> = want.iter().map(|v| v.to_bits()).collect();
            assert_eq!(got_bits, want_bits, "request {r}: rows not bit-identical");
        }
    }

    let stats = handle.shutdown();
    assert_eq!(stats.requests, (REQUESTS * 2) as u64);
    assert_eq!(stats.shed, 0);
}

#[test]
fn admission_cap_rejects_extra_connections_with_overloaded() {
    let fx = fixture(81);
    let handle = Server::bind(
        registry_for(&fx),
        ServeConfig {
            max_connections: 1,
            ..ServeConfig::default()
        },
        "127.0.0.1:0",
    )
    .unwrap();

    // First connection is admitted and served.
    let mut admitted = Client::connect(handle.local_addr()).expect("connect");
    admitted.embed(&[0, 1], 7).expect("admitted client served");

    // Second connection is over the cap: accepted, told Overloaded (wire
    // id 0 — no request was ever read), closed.
    let mut rejected = Client::connect(handle.local_addr()).expect("connect");
    match rejected.embed(&[0, 1], 7) {
        Err(ClientError::Server(ServeError::Overloaded)) => {}
        other => panic!("expected Overloaded rejection, got {other:?}"),
    }

    // The admitted connection keeps working afterwards.
    admitted.embed(&[2, 3], 7).expect("still served");

    let stats = handle.shutdown();
    assert_eq!(stats.conns_rejected, 1, "exactly one admission rejection");
    assert_eq!(stats.shed, 0, "admission is not queue shedding");
}

#[test]
fn queue_overflow_sheds_before_enqueue_with_typed_overloaded() {
    let fx = fixture(82);
    let handle = Server::bind(
        registry_for(&fx),
        ServeConfig {
            workers: 1,
            queue_depth: 8,
            ..ServeConfig::default()
        },
        "127.0.0.1:0",
    )
    .unwrap();
    let mut client = Client::connect(handle.local_addr()).expect("connect");

    // 64 jobs can never fit an 8-deep queue: shed deterministically,
    // before any job enqueues (no partial work, no deadline wait).
    let nodes: Vec<u32> = (0..8).cycle().take(64).collect();
    let started = Instant::now();
    match client.embed(&nodes, 3) {
        Err(ClientError::Server(ServeError::Overloaded)) => {}
        other => panic!("expected shed, got {other:?}"),
    }
    assert!(
        started.elapsed() < Duration::from_secs(2),
        "shedding must answer immediately, not ride out the deadline"
    );

    // A request that fits is served on the same connection right after.
    client.embed(&[0, 1, 2], 3).expect("small request served");

    let stats = handle.shutdown();
    assert!(stats.shed >= 1, "shed counter must record the rejection");
    assert_eq!(
        stats.jobs, 3,
        "no job of the shed request may reach a worker"
    );
}

#[test]
fn soak_1024_idle_connections_leave_thread_count_flat() {
    const CONNS: usize = 1024;

    let fx = fixture(83);
    let handle = Server::bind(registry_for(&fx), ServeConfig::default(), "127.0.0.1:0").unwrap();
    let addr = handle.local_addr();

    // Warm up one real request, then measure the thread baseline.
    let mut probe = Client::connect(addr).expect("connect");
    probe.embed(&[0, 1], 9).expect("probe served");
    let threads_before = process_threads();

    // Open the fleet. Chunked, syncing on the server's own connection
    // gauge, so the kernel backlog never overflows.
    let mut fleet: Vec<TcpStream> = Vec::with_capacity(CONNS);
    for chunk in 0..(CONNS / 64) {
        for _ in 0..64 {
            fleet.push(TcpStream::connect(addr).expect("connect"));
        }
        let want = ((chunk + 1) * 64 + 1) as i64; // +1 for the probe
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let open = handle
                .metrics()
                .snapshot()
                .gauge("serve_open_connections")
                .unwrap_or(0);
            if open >= want {
                break;
            }
            assert!(Instant::now() < deadline, "server stopped accepting");
            thread::sleep(Duration::from_millis(5));
        }
    }

    let threads_after = process_threads();
    assert_eq!(
        threads_after, threads_before,
        "thread count must be independent of connection count \
         ({CONNS} idle connections held open)"
    );

    // The server still serves real work while all of them sit open.
    probe.embed(&[4, 5, 6], 9).expect("served under soak");

    drop(fleet);
    let stats = handle.shutdown();
    assert_eq!(stats.conns_rejected, 0);
    assert!(stats.requests >= 2);
}

#[test]
fn slow_loris_partial_frames_do_not_starve_other_connections() {
    let fx = fixture(84);
    let handle = Server::bind(
        registry_for(&fx),
        ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        },
        "127.0.0.1:0",
    )
    .unwrap();
    let addr = handle.local_addr();

    // The loris: a valid embed frame dribbled a few bytes at a time with
    // long pauses. It holds its connection mid-frame the whole time.
    let frame = encode_request(&Request::Embed {
        id: 77,
        seed: 5,
        nodes: vec![1, 2, 3],
    });
    let mut loris = TcpStream::connect(addr).expect("connect");
    loris.write_all(&frame[..7]).expect("partial write");

    // While the loris stalls, a well-behaved client gets prompt answers.
    let mut client = Client::connect(addr).expect("connect");
    let want = fx.model.embed_nodes(&fx.graph, &[10, 11], 6);
    for _ in 0..5 {
        let started = Instant::now();
        let rows = client.embed(&[10, 11], 6).expect("served despite loris");
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "victim request stalled behind a slow-loris peer"
        );
        assert_eq!(
            rows[0].iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            want.row(0).iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    // The loris eventually completes its frame and is served too — a slow
    // peer is deprioritised, never disconnected or corrupted.
    loris.write_all(&frame[7..]).expect("rest of frame");
    let mut reader = FrameReader::new();
    let mut buf = [0u8; 4096];
    let body = loop {
        if let Some(body) = reader.next_frame().expect("clean frame") {
            break body;
        }
        let n = loris.read(&mut buf).expect("read response");
        assert!(n > 0, "server closed the loris before answering");
        reader.push(&buf[..n]);
    };
    match decode_response(&body).expect("decodes") {
        Response::Embeddings { id, .. } => assert_eq!(id, 77),
        other => panic!("expected embeddings, got {other:?}"),
    }

    handle.shutdown();
}

#[test]
fn shutdown_with_idle_connections_is_prompt_and_needs_no_self_connect() {
    let fx = fixture(85);
    let handle = Server::bind(registry_for(&fx), ServeConfig::default(), "127.0.0.1:0").unwrap();
    let addr = handle.local_addr();

    // A mix of idle raw connections and one that completed a request.
    let idle: Vec<TcpStream> = (0..16)
        .map(|_| TcpStream::connect(addr).expect("connect"))
        .collect();
    let mut client = Client::connect(addr).expect("connect");
    client.embed(&[0], 4).expect("served");

    // Shutdown is driven by the self-pipe wake token, not by connecting
    // to our own listening address, so it must complete promptly even
    // with nothing else touching the socket.
    let started = Instant::now();
    let stats = handle.shutdown();
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "shutdown must not hang waiting for a wake"
    );
    assert_eq!(stats.requests, 1);
    drop(idle);
}
