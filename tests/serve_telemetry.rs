//! Contracts of the serve observability layer: the `Telemetry` wire op
//! returns a merged SLO view with interpolated percentiles, anomalies
//! (shed, deadline drop) freeze the flight-recorder window into a
//! parseable JSONL post-mortem that contains the anomalous request's
//! timeline, and the open-connection gauge returns to zero after
//! arbitrary connection churn across every close path.

use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration, Instant};

use widen::core::{WidenConfig, WidenModel};
use widen::data::{acm_like, Scale};
use widen::serve::{Client, ClientError, ModelRegistry, ServeConfig, ServeError, Server};

fn tiny_config() -> WidenConfig {
    let mut c = WidenConfig::small();
    c.d = 8;
    c.n_w = 4;
    c.n_d = 4;
    c.phi = 1;
    c
}

struct Fixture {
    model: WidenModel,
    graph: widen::graph::HeteroGraph,
}

fn fixture(seed: u64) -> Fixture {
    let dataset = acm_like(Scale::Smoke, seed);
    let model = WidenModel::for_graph(&dataset.graph, tiny_config());
    Fixture {
        model,
        graph: dataset.graph,
    }
}

fn registry_for(fx: &Fixture) -> ModelRegistry {
    let checkpoint = fx.model.save_weights();
    ModelRegistry::from_checkpoint(fx.graph.clone(), tiny_config(), &checkpoint)
        .expect("checkpoint loads")
}

/// Minimal JSONL sanity check without a JSON parser (the vendored
/// serde_json stub is write-only): every line is one `{...}` object
/// carrying the fields a post-mortem reader keys on.
fn assert_parseable_jsonl(dump: &str) {
    assert!(!dump.is_empty(), "dump must not be empty");
    for line in dump.lines() {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "not a JSON object line: {line}"
        );
        for field in [
            "\"seq\":",
            "\"id\":",
            "\"kind\":",
            "\"outcome\":",
            "\"total_us\":",
        ] {
            assert!(line.contains(field), "missing {field} in {line}");
        }
        // Balanced braces and quotes — catches truncated writes.
        assert_eq!(
            line.matches('{').count(),
            line.matches('}').count(),
            "unbalanced braces: {line}"
        );
        assert_eq!(
            line.matches('"').count() % 2,
            0,
            "unbalanced quotes: {line}"
        );
    }
}

#[test]
fn telemetry_op_returns_merged_slo_view() {
    let fx = fixture(81);
    let handle = Server::bind(registry_for(&fx), ServeConfig::default(), "127.0.0.1:0").unwrap();

    let mut client = Client::connect(handle.local_addr()).unwrap();
    for seed in 0..4 {
        client.embed(&[0, 1, 2], seed).unwrap();
    }
    let text = client.telemetry().unwrap();

    // Merged view: counters from the server registry, SLO reports for
    // every histogram, including the reactor's request-latency series.
    assert!(text.starts_with('{') && text.ends_with('}'), "{text}");
    assert!(text.contains("\"counters\":"), "{text}");
    assert!(text.contains("\"gauges\":"), "{text}");
    assert!(text.contains("\"slo\":"), "{text}");
    assert!(text.contains("\"serve_requests_total\":"), "{text}");
    assert!(text.contains("\"serve_request_latency_us\":"), "{text}");
    assert!(text.contains("\"serve_reactor_tick_us\":"), "{text}");
    assert!(text.contains("\"p50\":"), "{text}");
    assert!(text.contains("\"p99\":"), "{text}");

    // The histogram behind the SLO report saw every request.
    let snap = handle.metrics().snapshot();
    let latency = snap.histogram("serve_request_latency_us").unwrap();
    assert!(latency.count >= 4, "latency count {}", latency.count);
    assert!(latency.quantile(0.99).is_some());
    handle.shutdown();
}

#[test]
fn shed_request_produces_parseable_postmortem_with_its_timeline() {
    let fx = fixture(82);
    let handle = Server::bind(
        registry_for(&fx),
        ServeConfig {
            // A queue this shallow sheds any multi-node request.
            queue_depth: 1,
            ..ServeConfig::default()
        },
        "127.0.0.1:0",
    )
    .unwrap();

    let mut client = Client::connect(handle.local_addr()).unwrap();
    // One successful single-node request seeds the recorder window.
    client.embed(&[0], 7).unwrap();
    let err = client.embed(&[0, 1, 2], 8).unwrap_err();
    assert!(matches!(err, ClientError::Server(ServeError::Overloaded)));

    // The dump is stored just after the response flushes; poll briefly.
    let deadline = Instant::now() + Duration::from_secs(5);
    let dump = loop {
        if let Some(dump) = handle.postmortem_dump() {
            break dump;
        }
        assert!(Instant::now() < deadline, "no post-mortem dump appeared");
        std::thread::sleep(Duration::from_millis(5));
    };
    assert_parseable_jsonl(&dump);
    // The shed request's own timeline is in the window.
    let shed_line = dump
        .lines()
        .find(|l| l.contains("\"outcome\":\"overloaded\""))
        .expect("shed request recorded");
    assert!(shed_line.contains("\"kind\":\"embed\""), "{shed_line}");
    assert!(shed_line.contains("\"nodes\":3"), "{shed_line}");
    // So is the healthy request that preceded it.
    assert!(
        dump.lines().any(|l| l.contains("\"outcome\":\"ok\"")),
        "{dump}"
    );
    let stats = handle.shutdown();
    assert_eq!(stats.shed, 1);
}

#[test]
fn deadline_dropped_job_dumps_a_timeline_with_lifecycle_phases() {
    let fx = fixture(83);
    let handle = Server::bind(
        registry_for(&fx),
        ServeConfig {
            // The coalescing window dwarfs the deadline: the job expires
            // in the batcher and is answered `DeadlineExceeded`.
            request_timeout_ms: 1,
            max_wait_us: 200_000,
            max_batch: 64,
            ..ServeConfig::default()
        },
        "127.0.0.1:0",
    )
    .unwrap();

    let mut client = Client::connect(handle.local_addr()).unwrap();
    let err = client.embed(&[0, 1], 9).unwrap_err();
    assert!(matches!(
        err,
        ClientError::Server(ServeError::DeadlineExceeded)
    ));

    let deadline = Instant::now() + Duration::from_secs(5);
    let dump = loop {
        if let Some(dump) = handle.postmortem_dump() {
            break dump;
        }
        assert!(Instant::now() < deadline, "no post-mortem dump appeared");
        std::thread::sleep(Duration::from_millis(5));
    };
    assert_parseable_jsonl(&dump);
    let line = dump
        .lines()
        .find(|l| l.contains("\"outcome\":\"deadline\""))
        .expect("deadline drop recorded");
    // The batcher stamped the lifecycle up to the drop point.
    assert!(line.contains("\"queue_wait\""), "{line}");
    assert!(line.contains("\"coalesce\""), "{line}");
    handle.shutdown();
}

#[test]
fn zero_capacity_recorder_disables_postmortems() {
    let fx = fixture(84);
    let handle = Server::bind(
        registry_for(&fx),
        ServeConfig {
            flight_recorder_capacity: 0,
            queue_depth: 1,
            ..ServeConfig::default()
        },
        "127.0.0.1:0",
    )
    .unwrap();
    let mut client = Client::connect(handle.local_addr()).unwrap();
    let err = client.embed(&[0, 1, 2], 8).unwrap_err();
    assert!(matches!(err, ClientError::Server(ServeError::Overloaded)));
    // An anomaly fired but nothing was recorded and nothing dumps.
    std::thread::sleep(Duration::from_millis(50));
    assert!(handle.postmortem_dump().is_none());
    let snap = handle.metrics().snapshot();
    assert_eq!(snap.counter("serve_postmortem_dumps_total"), Some(0));
    handle.shutdown();
}

#[test]
fn open_connection_gauge_returns_to_zero_after_churn() {
    let fx = fixture(85);
    let handle = Server::bind(
        registry_for(&fx),
        ServeConfig {
            max_connections: 8,
            ..ServeConfig::default()
        },
        "127.0.0.1:0",
    )
    .unwrap();
    let addr = handle.local_addr();

    // Path 1: well-behaved clients that request and disconnect cleanly.
    for round in 0..3 {
        let mut clients: Vec<Client> = (0..4).map(|_| Client::connect(addr).unwrap()).collect();
        for (i, c) in clients.iter_mut().enumerate() {
            c.embed(&[i as u32], round * 10 + i as u64).unwrap();
        }
        drop(clients);
    }
    // Path 2: peers that die abruptly mid-frame (partial bytes, no FIN
    // handshake beyond the close).
    for _ in 0..4 {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(&[7, 0, 0, 0, b'W']).unwrap();
        drop(s);
    }
    // Path 3: protocol offenders answered once and closed by the server.
    for _ in 0..2 {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(&[4, 0, 0, 0, b'X', b'X', b'X', b'X']).unwrap();
        let _ = s.set_read_timeout(Some(Duration::from_secs(2)));
        let mut buf = Vec::new();
        let _ = std::io::Read::read_to_end(&mut s, &mut buf);
    }
    // Let the abrupt closers fully deregister before filling the cap, so
    // the admission phase below is deterministic.
    wait_for_open(&handle, 0);

    // Path 4: connections beyond the admission cap (rejected, closed by
    // the server, never registered).
    let held: Vec<Client> = (0..8).map(|_| Client::connect(addr).unwrap()).collect();
    wait_for_open(&handle, 8);
    for _ in 0..3 {
        let mut s = TcpStream::connect(addr).unwrap();
        let _ = s.set_read_timeout(Some(Duration::from_secs(2)));
        let mut buf = Vec::new();
        let _ = std::io::Read::read_to_end(&mut s, &mut buf);
    }
    drop(held);

    // Every close path funnels through the same bookkeeping: the gauge
    // must land exactly on zero once the dust settles.
    wait_for_open(&handle, 0);
    let stats = handle.shutdown();
    // At least the three deliberate over-cap connects; earlier churn may
    // transiently brush the cap too (a poll tick dispatches new accepts
    // before the same tick's EOF events), which only adds rejections.
    assert!(
        stats.conns_rejected >= 3,
        "expected ≥ 3 rejections, saw {}",
        stats.conns_rejected
    );
}

/// Polls the open-connection gauge until it reaches `want` (the reactor
/// deregisters asynchronously) or a generous deadline passes.
fn wait_for_open(handle: &widen::serve::ServerHandle, want: i64) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let open = handle
            .metrics()
            .snapshot()
            .gauge("serve_open_connections")
            .unwrap_or(0);
        if open == want {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "gauge stuck at {open}, want {want}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}
