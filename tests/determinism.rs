//! Integration: bit-level reproducibility guarantees across the stack —
//! fixed seeds must give identical datasets, training trajectories and
//! predictions, and different seeds must actually differ.

use widen::core::{Trainer, WidenConfig, WidenModel};
use widen::data::{yelp_like, Scale};

fn config(seed: u64) -> WidenConfig {
    let mut c = WidenConfig::small();
    c.epochs = 5;
    c.n_w = 8;
    c.n_d = 6;
    c.phi = 2;
    c.seed = seed;
    c
}

#[test]
fn identical_seeds_reproduce_everything() {
    let run = || {
        let dataset = yelp_like(Scale::Smoke, 40);
        let train: Vec<u32> = dataset.transductive.train[..30].to_vec();
        let model = WidenModel::for_graph(&dataset.graph, config(7));
        let mut trainer = Trainer::new(model, &dataset.graph, &train);
        let report = trainer.fit(&train);
        let model = trainer.into_model();
        let preds = model.predict(&dataset.graph, &dataset.transductive.test[..50], 3);
        (report.epoch_losses, preds)
    };
    let (losses_a, preds_a) = run();
    let (losses_b, preds_b) = run();
    assert_eq!(losses_a, losses_b, "training trajectory must be bit-stable");
    assert_eq!(preds_a, preds_b, "predictions must be bit-stable");
}

#[test]
fn different_training_seeds_diverge() {
    let dataset = yelp_like(Scale::Smoke, 41);
    let train: Vec<u32> = dataset.transductive.train[..30].to_vec();
    let losses = |seed: u64| {
        let model = WidenModel::for_graph(&dataset.graph, config(seed));
        let mut trainer = Trainer::new(model, &dataset.graph, &train);
        trainer.fit(&train).epoch_losses
    };
    assert_ne!(losses(1), losses(2));
}

#[test]
fn dataset_generation_is_independent_of_global_state() {
    // Interleave generation with unrelated RNG usage; outputs must match.
    let a = yelp_like(Scale::Smoke, 42);
    use rand::Rng;
    let _noise: f64 = rand::thread_rng().gen();
    let b = yelp_like(Scale::Smoke, 42);
    assert_eq!(a.graph.num_directed_edges(), b.graph.num_directed_edges());
    assert_eq!(a.transductive.train, b.transductive.train);
    assert_eq!(a.graph.features().as_slice(), b.graph.features().as_slice());
}

#[test]
fn parallel_inference_is_deterministic() {
    // embed_nodes parallelises over chunks; ordering must not leak in.
    let dataset = yelp_like(Scale::Smoke, 43);
    let model = WidenModel::for_graph(&dataset.graph, config(5));
    let nodes: Vec<u32> = (0..120).collect();
    let a = model.embed_nodes(&dataset.graph, &nodes, 9);
    let b = model.embed_nodes(&dataset.graph, &nodes, 9);
    assert_eq!(a.as_slice(), b.as_slice());
}
