//! Cross-crate property-based tests (proptest) on the library's core
//! invariants: sampling structure, downsampling index bookkeeping,
//! attention normalisation and graph round-trips under random inputs.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use widen::core::{Trainer, WidenConfig, WidenModel};
use widen::data::{EdgeTypeSpec, HeteroSbmConfig, NodeTypeSpec};
use widen::graph::HeteroGraph;
use widen::sampling::{sample_deep, sample_wide};

fn arbitrary_graph(nodes: usize, classes: usize, seed: u64) -> HeteroGraph {
    HeteroSbmConfig {
        node_types: vec![
            NodeTypeSpec::new("a", nodes / 2 + 2, true),
            NodeTypeSpec::new("b", nodes / 2 + 2, false),
        ],
        edge_types: vec![
            EdgeTypeSpec::new("ab", 0, 1, 2.0, 0.6),
            EdgeTypeSpec::new("bb", 1, 1, 1.5, 0.5),
        ],
        num_classes: classes,
        feature_dim: 8,
        feature_signal_labeled: 0.3,
        feature_signal_unlabeled: 0.5,
        feature_noise: 1.0,
        hub_fraction: 0.1,
        informative_fraction: 0.8,
    }
    .generate(seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn wide_samples_are_genuine_neighbors(
        seed in 0u64..500,
        n_w in 1usize..24,
        node_pick in 0usize..1000,
    ) {
        let graph = arbitrary_graph(40, 2, seed);
        let node = (node_pick % graph.num_nodes()) as u32;
        let mut rng = StdRng::seed_from_u64(seed);
        let wide = sample_wide(&graph, node, n_w, &mut rng);
        // Size contract.
        if graph.degree(node) == 0 {
            prop_assert!(wide.is_empty());
        } else {
            prop_assert_eq!(wide.len(), n_w);
        }
        // Every entry is a real neighbour with the right edge type.
        for e in &wide.entries {
            let pos = graph
                .neighbors(node)
                .iter()
                .position(|&u| u == e.node);
            prop_assert!(pos.is_some());
            // The (neighbour, edge type) pair must exist among the node's
            // incident edges (parallel edges of different types allowed).
            let found = graph
                .neighbors(node)
                .iter()
                .zip(graph.edge_types_of(node))
                .any(|(&u, &t)| u == e.node && t == e.edge_type);
            prop_assert!(found);
        }
    }

    #[test]
    fn deep_walks_are_connected_paths(
        seed in 0u64..500,
        n_d in 1usize..30,
        node_pick in 0usize..1000,
    ) {
        let graph = arbitrary_graph(40, 2, seed);
        let node = (node_pick % graph.num_nodes()) as u32;
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD);
        let walk = sample_deep(&graph, node, n_d, &mut rng);
        prop_assert!(walk.len() <= n_d);
        let mut prev = node;
        for e in &walk.entries {
            let found = graph
                .neighbors(prev)
                .iter()
                .zip(graph.edge_types_of(prev))
                .any(|(&u, &t)| u == e.node && t == e.edge_type);
            prop_assert!(found, "walk step not an edge");
            prev = e.node;
        }
    }

    #[test]
    fn induced_subgraph_preserves_node_payloads(
        seed in 0u64..200,
        keep_ratio in 0.2f64..0.9,
    ) {
        let graph = arbitrary_graph(40, 2, seed);
        let keep: Vec<u32> = (0..graph.num_nodes() as u32)
            .filter(|&v| (u64::from(v).wrapping_mul(2654435761) % 1000) as f64 / 1000.0 < keep_ratio)
            .collect();
        prop_assume!(!keep.is_empty());
        let sub = graph.induced_subgraph(&keep);
        for (new, &old) in keep.iter().enumerate() {
            prop_assert_eq!(sub.graph.feature_row(new as u32), graph.feature_row(old));
            prop_assert_eq!(sub.graph.label(new as u32), graph.label(old));
            prop_assert_eq!(sub.graph.node_type(new as u32), graph.node_type(old));
        }
        // Degrees never grow.
        for (new, &old) in keep.iter().enumerate() {
            prop_assert!(sub.graph.degree(new as u32) <= graph.degree(old));
        }
    }

    #[test]
    fn forward_embeddings_are_unit_or_zero_norm(
        seed in 0u64..100,
    ) {
        let graph = arbitrary_graph(30, 2, seed);
        let mut config = WidenConfig::small();
        config.d = 8;
        config.n_w = 4;
        config.n_d = 4;
        config.phi = 2;
        config.seed = seed;
        let model = WidenModel::for_graph(&graph, config);
        let nodes: Vec<u32> = (0..graph.num_nodes().min(6) as u32).collect();
        let emb = model.embed_nodes(&graph, &nodes, seed);
        for r in 0..emb.rows() {
            let norm: f32 = emb.row(r).iter().map(|x| x * x).sum::<f32>().sqrt();
            prop_assert!(
                norm < 1.0 + 1e-3,
                "row norm {} exceeds 1 (Eq. 7 normalises)", norm
            );
        }
    }

    #[test]
    fn padded_softmax_puts_exactly_zero_mass_on_padding(
        seed in 0u64..500,
        rows in 1usize..8,
        cols in 1usize..12,
    ) {
        // The batched attention engine relies on padding columns carrying
        // *bit-exact* zero weight so padded rows reduce identically to
        // their per-node counterparts.
        let mut rng = StdRng::seed_from_u64(seed);
        let scores = widen::tensor::Tensor::randn(rows, cols, 2.0, &mut rng);
        let lens: Vec<usize> = (0..rows)
            .map(|r| 1 + (seed as usize + 3 * r) % cols)
            .collect();
        let soft = scores.padded_softmax_rows(&lens);
        for r in 0..rows {
            let row = soft.row(r);
            // Valid prefix: a probability distribution.
            let mass: f32 = row[..lens[r]].iter().sum();
            prop_assert!((mass - 1.0).abs() < 1e-5, "valid mass {mass} ≠ 1");
            prop_assert!(row[..lens[r]].iter().all(|&p| p >= 0.0));
            // Padding: exactly 0.0, not merely small.
            for (c, &p) in row.iter().enumerate().skip(lens[r]) {
                prop_assert!(
                    p == 0.0 && p.is_sign_positive(),
                    "padding [{r},{c}] carries mass {p}"
                );
            }
        }
    }
}

#[test]
fn training_respects_downsampling_floor_under_aggressive_thresholds() {
    // Deterministic stress of Algorithm 3's lower bounds: with r = ∞-like
    // thresholds, every epoch prunes until k is reached but never below.
    let graph = arbitrary_graph(60, 2, 9);
    let train: Vec<u32> = graph.labeled_nodes().into_iter().take(20).collect();
    let mut config = WidenConfig::small();
    config.d = 8;
    config.n_w = 6;
    config.n_d = 6;
    config.phi = 2;
    config.epochs = 15;
    config.r_wide = f64::MAX;
    config.r_deep = f64::MAX;
    config.k_wide = 2;
    config.k_deep = 2;
    let model = WidenModel::for_graph(&graph, config);
    let mut trainer = Trainer::new(model, &graph, &train);
    trainer.fit(&train);
    let (wide_total, deep_total) = trainer.neighbor_volume();
    // 20 nodes × k=2 minimum (isolated nodes may hold less).
    assert!(wide_total <= 20 * 6);
    assert!(deep_total <= 20 * 2 * 6);
    // With 15 epochs and aggressive triggering, most sets must be at floor.
    assert!(
        wide_total <= 20 * 3,
        "wide sets should be near the k=2 floor: {wide_total}"
    );
}
