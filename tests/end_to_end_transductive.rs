//! Integration: full transductive pipeline across crates — generate a
//! heterogeneous dataset, train WIDEN, evaluate with the metrics crate.

use widen::core::{Trainer, WidenConfig, WidenModel};
use widen::data::{acm_like, dblp_like, subset_fraction, yelp_like, Dataset, Scale};
use widen::eval::micro_f1;

fn train_and_score(dataset: &Dataset, mut config: WidenConfig) -> f64 {
    config.weight_decay = 0.01;
    let model = WidenModel::for_graph(&dataset.graph, config);
    let train = &dataset.transductive.train;
    let mut trainer = Trainer::new(model, &dataset.graph, train);
    trainer.fit(train);
    let model = trainer.into_model();
    let test = &dataset.transductive.test;
    let preds = model.predict_ensemble(&dataset.graph, test, 0xE7A1, 3);
    let truth: Vec<usize> = test
        .iter()
        .map(|&v| dataset.graph.label(v).unwrap() as usize)
        .collect();
    micro_f1(&truth, &preds)
}

fn fast_config() -> WidenConfig {
    let mut c = WidenConfig::small();
    c.epochs = 15;
    c.n_w = 12;
    c.n_d = 10;
    c.phi = 3;
    c
}

#[test]
fn widen_beats_chance_clearly_on_all_three_datasets() {
    for (dataset, chance) in [
        (acm_like(Scale::Smoke, 11), 1.0 / 3.0),
        (dblp_like(Scale::Smoke, 11), 0.25),
        (yelp_like(Scale::Smoke, 11), 1.0 / 3.0),
    ] {
        let f1 = train_and_score(&dataset, fast_config());
        assert!(
            f1 > chance + 0.3,
            "{}: micro-F1 {f1} too close to chance {chance}",
            dataset.name
        );
    }
}

#[test]
fn more_labels_do_not_hurt_much() {
    // The Table 2 label-fraction trend: 100% of labels should be at least
    // as good as 25% up to a small noise margin.
    let dataset = acm_like(Scale::Smoke, 12);
    let config = fast_config();
    let run = |frac: f64| {
        let train = subset_fraction(&dataset.transductive.train, frac);
        let model = WidenModel::for_graph(&dataset.graph, config.clone());
        let mut trainer = Trainer::new(model, &dataset.graph, &train);
        trainer.fit(&train);
        let model = trainer.into_model();
        let preds = model.predict_ensemble(&dataset.graph, &dataset.transductive.test, 1, 3);
        let truth: Vec<usize> = dataset
            .transductive
            .test
            .iter()
            .map(|&v| dataset.graph.label(v).unwrap() as usize)
            .collect();
        micro_f1(&truth, &preds)
    };
    let quarter = run(0.25);
    let full = run(1.0);
    assert!(
        full > quarter - 0.05,
        "full labels ({full}) should not underperform quarter labels ({quarter})"
    );
}

#[test]
fn validation_split_is_usable_for_model_selection() {
    let dataset = acm_like(Scale::Smoke, 13);
    let config = fast_config();
    let model = WidenModel::for_graph(&dataset.graph, config);
    let mut trainer = Trainer::new(model, &dataset.graph, &dataset.transductive.train);
    trainer.fit(&dataset.transductive.train);
    let model = trainer.into_model();
    let val = &dataset.transductive.val;
    let preds = model.predict(&dataset.graph, val, 2);
    let truth: Vec<usize> = val
        .iter()
        .map(|&v| dataset.graph.label(v).unwrap() as usize)
        .collect();
    // Validation accuracy should track test-level performance.
    assert!(micro_f1(&truth, &preds) > 0.5);
}
