//! End-to-end trace propagation through the serve path: a traced request
//! must come back with a structurally sound server-side span summary
//! (root request span first, children nested inside it), old-style
//! untraced clients must keep working against the same server, and slow
//! requests must land in the configured slow-request log.

use widen::core::{WidenConfig, WidenModel};
use widen::data::{acm_like, Scale};
use widen::serve::{Client, ModelRegistry, ServeConfig, Server, WireSpan};

fn registry(seed: u64) -> ModelRegistry {
    let dataset = acm_like(Scale::Smoke, seed);
    let mut cfg = WidenConfig::small();
    cfg.d = 8;
    cfg.n_w = 4;
    cfg.n_d = 4;
    cfg.phi = 1;
    let model = WidenModel::for_graph(&dataset.graph, cfg);
    ModelRegistry::from_model(dataset.graph, model)
}

#[test]
fn traced_request_returns_nested_span_summary() {
    let handle = Server::bind(registry(11), ServeConfig::default(), "127.0.0.1:0").expect("bind");
    let mut client = Client::connect(handle.local_addr()).expect("connect");
    client.set_tracing(true);

    // Single-node request: its pipeline spans (queue-wait → coalesce →
    // cache-lookup → forward) are sequential, so they must fit inside the
    // request span both individually and summed.
    let rows = client.embed(&[3], 7).expect("traced embed");
    assert_eq!(rows.len(), 1);
    let summary = client.last_trace().expect("span summary returned").clone();

    let root = &summary.spans[0];
    assert_eq!(root.name, "serve.server.request");
    assert_eq!(root.parent, WireSpan::ROOT);
    assert_eq!(root.start_ns, 0);

    let children = &summary.spans[1..];
    let names: Vec<&str> = children.iter().map(|s| s.name.as_str()).collect();
    assert!(
        names.contains(&"serve.batcher.queue_wait"),
        "missing queue-wait span in {names:?}"
    );
    assert!(
        names.contains(&"serve.batcher.forward_batch"),
        "missing forward span in {names:?}"
    );
    for child in children {
        assert_eq!(child.parent, 0, "children parent to the request root");
        assert!(
            child.start_ns + child.dur_ns <= root.dur_ns,
            "child {} [{}..{}] escapes the request span (dur {})",
            child.name,
            child.start_ns,
            child.start_ns + child.dur_ns,
            root.dur_ns
        );
    }
    let child_sum: u64 = children.iter().map(|s| s.dur_ns).sum();
    assert!(
        child_sum <= root.dur_ns,
        "sequential children ({child_sum}ns) exceed the request span ({}ns)",
        root.dur_ns
    );

    // A second traced call replaces the summary with a fresh trace id.
    let first_trace = summary.trace_id;
    client.classify(&[1, 2], 7, 2).expect("traced classify");
    let second = client.last_trace().expect("second summary");
    assert_ne!(second.trace_id, first_trace, "fresh trace id per request");

    // Tracing off again: no stale summary lingers.
    client.set_tracing(false);
    client.embed(&[3], 7).expect("untraced embed");
    assert!(client.last_trace().is_none());
    handle.shutdown();
}

#[test]
fn untraced_clients_interoperate_with_a_tracing_server() {
    let handle = Server::bind(registry(13), ServeConfig::default(), "127.0.0.1:0").expect("bind");

    // Plain version-1 client traffic against the same server, answers
    // bit-identical to the serial engine regardless of tracing support.
    let mut plain = Client::connect(handle.local_addr()).expect("connect plain");
    let rows = plain.embed(&[0, 4], 9).expect("plain embed");
    assert_eq!(rows.len(), 2);
    assert!(plain.last_trace().is_none());

    // A traced client on another connection does not disturb plain ones.
    let mut traced = Client::connect(handle.local_addr()).expect("connect traced");
    traced.set_tracing(true);
    let traced_rows = traced.embed(&[0, 4], 9).expect("traced embed");
    assert_eq!(rows, traced_rows, "tracing never changes answers");
    assert!(traced.last_trace().is_some());

    let rows_again = plain.embed(&[0, 4], 9).expect("plain embed again");
    assert_eq!(rows, rows_again);
    assert!(plain.last_trace().is_none());
    handle.shutdown();
}

#[test]
fn slow_requests_land_in_the_configured_log() {
    let dir = std::env::temp_dir().join(format!("widen_slow_log_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let log_path = dir.join("slow.jsonl");
    let config = ServeConfig {
        slow_request_ms: 1,
        slow_log_path: Some(log_path.clone()),
        cache_capacity: 0,
        // A 10ms coalescing window bounds the request's duration from
        // below (4 jobs never fill a 32-job batch, so the window runs its
        // full length), making the 1ms slow threshold deterministic.
        max_wait_us: 10_000,
        ..ServeConfig::default()
    };
    let handle = Server::bind(registry(17), config, "127.0.0.1:0").expect("bind");
    let mut client = Client::connect(handle.local_addr()).expect("connect");
    client.set_tracing(true);
    client.embed(&[0, 1, 2, 3], 5).expect("embed");
    let stats = handle.shutdown();

    let log = std::fs::read_to_string(&log_path).expect("slow log exists");
    let lines: Vec<&str> = log.lines().collect();
    assert!(
        !lines.is_empty(),
        "a fresh uncached forward takes >1ms and must be logged"
    );
    assert!(lines[0].contains("\"event\":\"slow_request\""));
    assert!(lines[0].contains("\"kind\":\"embed\""));
    assert!(lines[0].contains("serve.server.request"));
    assert!(lines[0].contains("serve.server.write_response"));
    assert!(stats.requests >= 1);
    let _ = std::fs::remove_dir_all(&dir);
}
