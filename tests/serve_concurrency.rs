//! Concurrency contract of the serving layer: many client threads hammer
//! one in-process server, and every coalesced answer must equal the serial
//! `predict_ensemble` / `embed_nodes` answer for that node set and seed;
//! shutdown must drain in-flight requests without dropping any.

use std::sync::Arc;
use std::thread;
use std::time::Duration;

use widen::core::{WidenConfig, WidenModel};
use widen::data::{acm_like, Scale};
use widen::serve::{Client, ModelRegistry, ServeConfig, Server};

const ROUNDS: usize = 2;

fn tiny_config() -> WidenConfig {
    let mut c = WidenConfig::small();
    c.d = 8;
    c.n_w = 4;
    c.n_d = 4;
    c.phi = 1;
    c
}

struct Fixture {
    model: WidenModel,
    graph: widen::graph::HeteroGraph,
}

fn fixture(seed: u64) -> Fixture {
    let dataset = acm_like(Scale::Smoke, seed);
    let model = WidenModel::for_graph(&dataset.graph, tiny_config());
    Fixture {
        model,
        graph: dataset.graph,
    }
}

#[test]
fn concurrent_clients_get_the_serial_answers() {
    const THREADS: usize = 4;
    const REQUESTS_PER_THREAD: usize = 5;

    let fx = fixture(60);
    let checkpoint = fx.model.save_weights();
    let registry = ModelRegistry::from_checkpoint(fx.graph.clone(), tiny_config(), &checkpoint)
        .expect("checkpoint loads");
    let config = ServeConfig {
        workers: 1,
        max_batch: 16,
        max_wait_us: 2_000,
        ..ServeConfig::default()
    };
    let handle = Server::bind(registry, config, "127.0.0.1:0").unwrap();
    let addr = handle.local_addr();

    // Precompute the serial oracle for every (thread, request) pair.
    let mut expected_labels = Vec::new();
    let mut expected_rows = Vec::new();
    for t in 0..THREADS {
        let mut per_thread_labels = Vec::new();
        let mut per_thread_rows = Vec::new();
        for r in 0..REQUESTS_PER_THREAD {
            let nodes = nodes_for(t, r);
            let seed = seed_for(t, r);
            let labels: Vec<u32> = fx
                .model
                .predict_ensemble(&fx.graph, &nodes, seed, ROUNDS)
                .into_iter()
                .map(|l| l as u32)
                .collect();
            let emb = fx.model.embed_nodes(&fx.graph, &nodes, seed);
            let rows: Vec<Vec<f32>> = (0..nodes.len()).map(|i| emb.row(i).to_vec()).collect();
            per_thread_labels.push(labels);
            per_thread_rows.push(rows);
        }
        expected_labels.push(per_thread_labels);
        expected_rows.push(per_thread_rows);
    }
    let expected_labels = Arc::new(expected_labels);
    let expected_rows = Arc::new(expected_rows);

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let expected_labels = expected_labels.clone();
            let expected_rows = expected_rows.clone();
            thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for r in 0..REQUESTS_PER_THREAD {
                    let nodes = nodes_for(t, r);
                    let seed = seed_for(t, r);
                    let labels = client
                        .classify(&nodes, seed, ROUNDS as u32)
                        .expect("classify succeeds");
                    assert_eq!(
                        labels, expected_labels[t][r],
                        "thread {t} request {r}: classify diverged from predict_ensemble"
                    );
                    let rows = client.embed(&nodes, seed).expect("embed succeeds");
                    for (got, want) in rows.iter().zip(&expected_rows[t][r]) {
                        let got_bits: Vec<u32> = got.iter().map(|v| v.to_bits()).collect();
                        let want_bits: Vec<u32> = want.iter().map(|v| v.to_bits()).collect();
                        assert_eq!(
                            got_bits, want_bits,
                            "thread {t} request {r}: embedding not bit-identical"
                        );
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread panicked");
    }

    let stats = handle.shutdown();
    let total = (THREADS * REQUESTS_PER_THREAD * 2) as u64;
    assert_eq!(stats.requests, total, "every request must be counted once");
    assert!(
        stats.batches <= stats.jobs,
        "fused batches can never outnumber jobs"
    );
    assert_eq!(stats.deadline_drops, 0);
}

#[test]
fn stats_op_reports_live_counters() {
    let fx = fixture(62);
    let checkpoint = fx.model.save_weights();
    let registry = ModelRegistry::from_checkpoint(fx.graph.clone(), tiny_config(), &checkpoint)
        .expect("checkpoint loads");
    let handle = Server::bind(registry, ServeConfig::default(), "127.0.0.1:0").unwrap();
    let mut client = Client::connect(handle.local_addr()).expect("connect");

    let nodes: Vec<u32> = (0..5).collect();
    client.embed(&nodes, 3).expect("embed succeeds");
    client.embed(&nodes, 3).expect("cached embed succeeds");
    client.classify(&nodes, 3, 2).expect("classify succeeds");

    let text = client.stats().expect("stats succeeds");
    assert!(
        text.starts_with("{\"server\":{"),
        "unexpected shape: {text}"
    );
    assert!(
        text.contains("\"process\":{"),
        "missing process section: {text}"
    );
    for key in [
        "serve_requests_total",
        "serve_jobs_total",
        "serve_batches_total",
        "serve_cache_hits_total",
        "serve_cache_misses_total",
        "serve_batch_size",
        "serve_batch_wait_us",
        "serve_queue_depth",
    ] {
        assert!(text.contains(key), "stats payload missing `{key}`: {text}");
    }
    // The snapshot is rendered while the Stats request itself is being
    // answered, so exactly the three data requests are counted in it.
    assert!(
        text.contains("\"serve_requests_total\":3"),
        "live counter not reflected: {text}"
    );

    let snap = handle.metrics().snapshot();
    assert_eq!(snap.counter("serve_requests_total"), Some(4));
    assert_eq!(snap.counter("serve_jobs_total"), Some(15));
    // The repeated embed hits the cache for every node of the request.
    assert_eq!(snap.counter("serve_cache_hits_total"), Some(5));
    let sizes = snap.histogram("serve_batch_size").expect("histogram");
    assert!(sizes.count >= 1 && sizes.count == snap.counter("serve_batches_total").unwrap());
    handle.shutdown();
}

#[test]
fn embedding_lru_serves_sequential_repeats_under_concurrency() {
    // The throughput-bench cache contract: singleflight dedup only folds
    // *concurrent* identical requests, so a client repeating its own
    // (nodes, seed) key back to back must be served by the embedding LRU.
    // Per-client seeds keep the keys disjoint across threads, so the hit
    // count has a hard floor of one hit per node per client.
    const THREADS: usize = 4;
    const NODES: u32 = 6;

    let fx = fixture(63);
    let checkpoint = fx.model.save_weights();
    let registry = ModelRegistry::from_checkpoint(fx.graph.clone(), tiny_config(), &checkpoint)
        .expect("checkpoint loads");
    let handle = Server::bind(registry, ServeConfig::default(), "127.0.0.1:0").unwrap();
    let addr = handle.local_addr();

    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let nodes: Vec<u32> = (0..NODES).collect();
                let seed = 9_000 + t as u64;
                let first = client.embed(&nodes, seed).expect("embed succeeds");
                let second = client.embed(&nodes, seed).expect("cached embed succeeds");
                for (a, b) in first.iter().zip(&second) {
                    let a_bits: Vec<u32> = a.iter().map(|v| v.to_bits()).collect();
                    let b_bits: Vec<u32> = b.iter().map(|v| v.to_bits()).collect();
                    assert_eq!(a_bits, b_bits, "cached rows must be bit-identical");
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("client thread panicked");
    }

    let stats = handle.shutdown();
    assert!(
        stats.cache_hits >= (THREADS as u64) * u64::from(NODES),
        "LRU must serve every sequential repeat: {} hits, expected at least {}",
        stats.cache_hits,
        THREADS * NODES as usize
    );
}

/// Distinct, overlapping node sets so concurrent requests share cache and
/// batch space without being identical.
fn nodes_for(thread: usize, request: usize) -> Vec<u32> {
    let base = (thread * 3 + request) as u32;
    (base..base + 6).collect()
}

fn seed_for(thread: usize, request: usize) -> u64 {
    100 + (thread * 17 + request) as u64
}

#[test]
fn shutdown_drains_in_flight_requests() {
    const CLIENTS: usize = 3;

    let fx = fixture(61);
    let checkpoint = fx.model.save_weights();
    let registry = ModelRegistry::from_checkpoint(fx.graph.clone(), tiny_config(), &checkpoint)
        .expect("checkpoint loads");
    // Narrow queue + single worker so requests are genuinely in flight
    // (queued or mid-batch) when shutdown fires.
    let config = ServeConfig {
        workers: 1,
        max_batch: 8,
        max_wait_us: 500,
        ..ServeConfig::default()
    };
    let handle = Server::bind(registry, config, "127.0.0.1:0").unwrap();
    let addr = handle.local_addr();

    let nodes: Vec<u32> = (0..24).collect();
    let expected: Vec<Vec<u32>> = (0..CLIENTS)
        .map(|c| {
            fx.model
                .predict_ensemble(&fx.graph, &nodes, c as u64, ROUNDS)
                .into_iter()
                .map(|l| l as u32)
                .collect()
        })
        .collect();

    let workers: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let nodes = nodes.clone();
            thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                client
                    .classify(&nodes, c as u64, ROUNDS as u32)
                    .expect("in-flight request must be answered, not dropped")
            })
        })
        .collect();

    // Let the requests reach the server, then shut down while they are
    // being computed. Graceful drain means every one still gets its answer.
    thread::sleep(Duration::from_millis(30));
    let stats = handle.shutdown();

    for (c, worker) in workers.into_iter().enumerate() {
        let labels = worker.join().expect("client thread panicked");
        assert_eq!(
            labels, expected[c],
            "client {c}: drained answer must equal the serial oracle"
        );
    }
    assert_eq!(stats.requests, CLIENTS as u64);
    assert_eq!(stats.deadline_drops, 0);
}
