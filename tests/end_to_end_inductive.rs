//! Integration: the inductive protocol (§4.3/4.6) — held-out nodes are
//! absent from the training graph and embedded only at inference time.

use widen::core::{Trainer, WidenConfig, WidenModel};
use widen::data::{acm_like, Scale};
use widen::eval::{micro_f1, silhouette_score};
use widen::graph::NodeId;

fn fast_config() -> WidenConfig {
    let mut c = WidenConfig::small();
    c.epochs = 15;
    c.n_w = 12;
    c.n_d = 10;
    c.phi = 3;
    c.weight_decay = 0.01;
    c
}

#[test]
fn inductive_nodes_are_truly_unseen_yet_classified_well() {
    let dataset = acm_like(Scale::Smoke, 21);
    let held_out = &dataset.inductive.test;
    let reduced = dataset.graph.without_nodes(held_out);

    // Sanity: the held-out nodes really are not in the training graph.
    assert_eq!(
        reduced.graph.num_nodes(),
        dataset.graph.num_nodes() - held_out.len()
    );
    for &v in held_out {
        assert!(reduced.mapping.to_new(v).is_none());
    }

    let train: Vec<NodeId> = dataset
        .inductive
        .train
        .iter()
        .filter_map(|&v| reduced.mapping.to_new(v))
        .collect();
    let model = WidenModel::for_graph(&reduced.graph, fast_config());
    let mut trainer = Trainer::new(model, &reduced.graph, &train);
    trainer.fit(&train);
    let model = trainer.into_model();

    let preds = model.predict_ensemble(&dataset.graph, held_out, 3, 3);
    let truth: Vec<usize> = held_out
        .iter()
        .map(|&v| dataset.graph.label(v).unwrap() as usize)
        .collect();
    let f1 = micro_f1(&truth, &preds);
    assert!(f1 > 0.6, "inductive micro-F1 = {f1}");
}

#[test]
fn inductive_embeddings_cluster_by_class() {
    // The quantitative core of Figure 3.
    let dataset = acm_like(Scale::Smoke, 22);
    let held_out = &dataset.inductive.test;
    let reduced = dataset.graph.without_nodes(held_out);
    let train: Vec<NodeId> = dataset
        .inductive
        .train
        .iter()
        .filter_map(|&v| reduced.mapping.to_new(v))
        .collect();
    let model = WidenModel::for_graph(&reduced.graph, fast_config());
    let mut trainer = Trainer::new(model, &reduced.graph, &train);
    trainer.fit(&train);
    let model = trainer.into_model();

    let emb = model.embed_nodes(&dataset.graph, held_out, 5);
    let labels: Vec<usize> = held_out
        .iter()
        .map(|&v| dataset.graph.label(v).unwrap() as usize)
        .collect();
    let sil = silhouette_score(&emb, &labels);
    assert!(sil > 0.1, "inductive embedding silhouette = {sil}");
}

#[test]
fn untrained_model_embeds_but_classifies_at_chance_level() {
    // Inductive embedding works even before training (it is purely
    // structural), but classification should be poor — confirming training
    // actually contributes.
    let dataset = acm_like(Scale::Smoke, 23);
    let model = WidenModel::for_graph(&dataset.graph, fast_config());
    let test = &dataset.transductive.test;
    let preds = model.predict(&dataset.graph, test, 3);
    let truth: Vec<usize> = test
        .iter()
        .map(|&v| dataset.graph.label(v).unwrap() as usize)
        .collect();
    let f1 = micro_f1(&truth, &preds);
    assert!(f1 < 0.6, "untrained model unexpectedly accurate: {f1}");
    let emb = model.embed_nodes(&dataset.graph, &test[..8], 3);
    assert!(emb.all_finite());
}
