//! Differential tests pinning the sharded trainer to the single-graph
//! trainer: with one shard the two are bitwise identical, with k shards the
//! run is deterministic and parallelism-invariant, halo subgraphs reproduce
//! the full graph's sampling streams exactly, and k-shard training matches
//! full-graph micro-F1 at (truncated) paper configuration.

use widen::core::{ShardParallelism, ShardedTrainer, Trainer, WidenConfig, WidenModel};
use widen::data::{acm_like, yelp_like, Scale};
use widen::eval::micro_f1;
use widen::graph::greedy_bfs;

fn tiny_config() -> WidenConfig {
    let mut c = WidenConfig::small();
    c.d = 16;
    c.n_w = 5;
    c.n_d = 5;
    c.phi = 2;
    c.epochs = 4;
    c.batch_size = 16;
    c.learning_rate = 5e-3;
    c.k_wide = 2;
    c.k_deep = 2;
    c.r_wide = 0.5;
    c.r_deep = 0.5;
    c
}

fn max_weight_diff(a: &WidenModel, b: &WidenModel) -> f32 {
    a.params
        .snapshot()
        .iter()
        .zip(&b.params.snapshot())
        .map(|(x, y)| x.max_abs_diff(y))
        .fold(0.0, f32::max)
}

#[test]
fn one_shard_sharded_trainer_is_bitwise_the_trainer() {
    let dataset = acm_like(Scale::Smoke, 21);
    let train = &dataset.transductive.train;
    let cfg = tiny_config();

    let model = WidenModel::for_graph(&dataset.graph, cfg.clone());
    let mut trainer = Trainer::new(model, &dataset.graph, train);
    let base = trainer.fit(train);
    let base_model = trainer.into_model();

    let model = WidenModel::for_graph(&dataset.graph, cfg);
    let mut sharded = ShardedTrainer::new(model, &dataset.graph, train, 1);
    sharded.set_parallelism(ShardParallelism::Sequential);
    let report = sharded.fit();
    let sharded_model = sharded.into_model();

    // Bitwise: the exact same f64 losses, the exact same weights.
    assert_eq!(base.epoch_losses, report.train.epoch_losses);
    assert_eq!(max_weight_diff(&base_model, &sharded_model), 0.0);
    // And the same downsampling trajectory.
    assert_eq!(base.wide_drops, report.train.wide_drops);
    assert_eq!(base.deep_drops, report.train.deep_drops);
    assert_eq!(base.relay_edges, report.train.relay_edges);
}

#[test]
fn k_shard_training_is_deterministic_and_parallelism_invariant() {
    let dataset = acm_like(Scale::Smoke, 22);
    let train = &dataset.transductive.train;
    let run = |parallelism: ShardParallelism| {
        let model = WidenModel::for_graph(&dataset.graph, tiny_config());
        let mut sharded = ShardedTrainer::new(model, &dataset.graph, train, 2);
        sharded.set_parallelism(parallelism);
        let report = sharded.fit();
        (report.train.epoch_losses.clone(), sharded.into_model())
    };
    let (losses_a, model_a) = run(ShardParallelism::Sequential);
    let (losses_b, model_b) = run(ShardParallelism::Sequential);
    let (losses_c, model_c) = run(ShardParallelism::Threads);
    assert_eq!(losses_a, losses_b, "same seed must replay bitwise");
    assert_eq!(max_weight_diff(&model_a, &model_b), 0.0);
    assert_eq!(
        losses_a, losses_c,
        "thread-per-shard must match sequential bitwise"
    );
    assert_eq!(max_weight_diff(&model_a, &model_c), 0.0);
}

/// The halo contract behind every other test here: sampling a node inside
/// its halo-expanded shard (keyed by its global id) reproduces the full
/// graph's wide set and deep walks exactly, once local ids are mapped back.
#[test]
fn halo_subgraph_reproduces_sampling_streams_on_every_core_node() {
    let dataset = yelp_like(Scale::Smoke, 23);
    let graph = &dataset.graph;
    let cfg = tiny_config();
    let model = WidenModel::for_graph(graph, cfg.clone());
    let k = 3;
    let partition = greedy_bfs(graph, k, 2);
    let radius = cfg.n_d.max(1);
    let seed = 0xD1FF_u64;

    let mut checked = 0usize;
    for p in 0..k as u32 {
        let keep = partition.halo(graph, p, radius);
        let sub = graph.induced_subgraph(&keep);
        // Every 7th core node keeps the test fast while still crossing
        // plenty of shard boundaries.
        for &global in partition.part(p).iter().step_by(7) {
            let local = sub.mapping.to_new(global).expect("core node in shard");
            let full = model.sample_state_as(graph, global, global, seed);
            let shard = model.sample_state_as(&sub.graph, local, global, seed);

            let full_wide: Vec<(u32, u16)> = full
                .wide
                .entries
                .iter()
                .map(|e| (e.node, e.edge_type))
                .collect();
            let shard_wide: Vec<(u32, u16)> = shard
                .wide
                .entries
                .iter()
                .map(|e| (sub.mapping.to_old(e.node), e.edge_type))
                .collect();
            assert_eq!(full_wide, shard_wide, "wide set diverged at node {global}");

            assert_eq!(full.deeps.len(), shard.deeps.len());
            for (fd, sd) in full.deeps.iter().zip(&shard.deeps) {
                let full_walk: Vec<(u32, u16)> = fd
                    .set
                    .entries
                    .iter()
                    .map(|e| (e.node, e.edge_type))
                    .collect();
                let shard_walk: Vec<(u32, u16)> = sd
                    .set
                    .entries
                    .iter()
                    .map(|e| (sub.mapping.to_old(e.node), e.edge_type))
                    .collect();
                assert_eq!(full_walk, shard_walk, "deep walk diverged at node {global}");
            }
            checked += 1;
        }
    }
    assert!(checked > 50, "expected a meaningful sample, got {checked}");
}

#[test]
fn four_shard_training_matches_full_graph_micro_f1_at_paper_config() {
    let dataset = acm_like(Scale::Smoke, 24);
    let train = &dataset.transductive.train;
    let test = &dataset.transductive.test;
    let truth: Vec<usize> = test
        .iter()
        .map(|&v| dataset.graph.label(v).unwrap() as usize)
        .collect();
    // Paper hyper-parameters with a truncated epoch budget: enough
    // optimizer steps for the two runs to land on their (deterministic)
    // scores without multi-minute runtimes.
    let mut cfg = WidenConfig::paper();
    cfg.epochs = 2;

    let model = WidenModel::for_graph(&dataset.graph, cfg.clone());
    let mut trainer = Trainer::new(model, &dataset.graph, train);
    trainer.fit(train);
    let full_model = trainer.into_model();
    let full_f1 = micro_f1(&truth, &full_model.predict(&dataset.graph, test, 7));

    let model = WidenModel::for_graph(&dataset.graph, cfg);
    let mut sharded = ShardedTrainer::new(model, &dataset.graph, train, 4);
    sharded.set_parallelism(ShardParallelism::Sequential);
    sharded.fit();
    let shard_model = sharded.into_model();
    let shard_f1 = micro_f1(&truth, &shard_model.predict(&dataset.graph, test, 7));

    // Acceptance band from the issue: within 0.5 micro-F1 points. At
    // lr = 1e-4 two epochs leave both models close to initialisation, so
    // this checks the shard decomposition itself introduces no drift; the
    // learned-regime comparison lives in the test below.
    assert!(
        (full_f1 - shard_f1).abs() <= 0.005,
        "4-shard micro-F1 {shard_f1} drifted from full-graph {full_f1}"
    );
    assert!(full_f1 > 0.0 && shard_f1 > 0.0);
}

#[test]
fn two_shard_training_learns_like_the_full_graph() {
    let dataset = acm_like(Scale::Smoke, 25);
    let train = &dataset.transductive.train;
    let test = &dataset.transductive.test;
    let truth: Vec<usize> = test
        .iter()
        .map(|&v| dataset.graph.label(v).unwrap() as usize)
        .collect();
    // A configuration that actually converges in a few epochs, so parity
    // is checked between two models that have genuinely learned.
    let mut cfg = WidenConfig::small();
    cfg.epochs = 10;
    cfg.n_w = 12;
    cfg.n_d = 10;
    cfg.phi = 3;

    let model = WidenModel::for_graph(&dataset.graph, cfg.clone());
    let mut trainer = Trainer::new(model, &dataset.graph, train);
    trainer.fit(train);
    let full_f1 = micro_f1(
        &truth,
        &trainer.into_model().predict(&dataset.graph, test, 7),
    );

    let model = WidenModel::for_graph(&dataset.graph, cfg);
    let mut sharded = ShardedTrainer::new(model, &dataset.graph, train, 2);
    sharded.fit();
    let shard_f1 = micro_f1(
        &truth,
        &sharded.into_model().predict(&dataset.graph, test, 7),
    );

    assert!(full_f1 > 0.63, "full-graph baseline weak: {full_f1}");
    assert!(shard_f1 > 0.63, "2-shard run weak: {shard_f1}");
    assert!(
        (full_f1 - shard_f1).abs() <= 0.08,
        "learned-regime drift: full {full_f1} vs sharded {shard_f1}"
    );
}
