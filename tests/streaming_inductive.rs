//! Integration: the streaming-graph inductive scenario (the paper's §1
//! motivation made literal). The model trains once on a graph that has
//! never contained the held-out nodes; those nodes then *arrive* in waves
//! through the mutation API — `add_node_with_edges`, no rebuild, no
//! pre-removal trick on the serving side — and every wave is classified
//! on the growing graph with frozen weights. Accuracy per wave must stay
//! within a fixed bound of the frozen-split baseline (the classic
//! protocol that evaluates on the complete pre-built graph).

use widen::core::{Trainer, WidenConfig, WidenModel};
use widen::data::{acm_like, Scale};
use widen::eval::micro_f1;
use widen::graph::{EdgeTypeId, NodeId};

const WAVES: usize = 3;
const ROUNDS: usize = 3;
/// Streamed waves see a slightly sparser graph than the baseline (later
/// arrivals are still absent), so exact equality is not expected — but
/// the gap must stay small and the absolute floor must hold.
const MAX_F1_GAP: f64 = 0.2;
const MIN_F1: f64 = 0.6;

fn fast_config() -> WidenConfig {
    let mut c = WidenConfig::small();
    c.epochs = 15;
    c.n_w = 12;
    c.n_d = 10;
    c.phi = 3;
    c.weight_decay = 0.01;
    c
}

#[test]
fn streamed_waves_classify_within_bound_of_frozen_split_baseline() {
    let dataset = acm_like(Scale::Smoke, 21);
    let held_out = &dataset.inductive.test;
    let reduced = dataset.graph.without_nodes(held_out);
    let train: Vec<NodeId> = dataset
        .inductive
        .train
        .iter()
        .filter_map(|&v| reduced.mapping.to_new(v))
        .collect();
    let model = WidenModel::for_graph(&reduced.graph, fast_config());
    let mut trainer = Trainer::new(model, &reduced.graph, &train);
    trainer.fit(&train);
    let model = trainer.into_model();

    // The serving graph starts as the training graph and only ever grows
    // through the mutation API. `arrived[orig]` maps full-graph ids to
    // streaming-graph ids as nodes land.
    let mut g = reduced.graph.clone();
    let mut arrived: Vec<Option<NodeId>> = (0..dataset.graph.num_nodes() as NodeId)
        .map(|v| reduced.mapping.to_new(v))
        .collect();

    let wave_size = held_out.len().div_ceil(WAVES);
    for (w, wave) in held_out.chunks(wave_size).enumerate() {
        let mut new_ids = Vec::with_capacity(wave.len());
        for &v in wave {
            // Edges to peers already present; edges to later arrivals are
            // added by *their* ingest, exactly once per edge.
            let edges: Vec<(NodeId, EdgeTypeId)> = dataset
                .graph
                .neighbors(v)
                .iter()
                .zip(dataset.graph.edge_types_of(v))
                .filter_map(|(&u, &t)| arrived[u as usize].map(|nu| (nu, EdgeTypeId(t))))
                .collect();
            let id = g
                .add_node_with_edges(
                    dataset.graph.node_type(v),
                    dataset.graph.feature_row(v).to_vec(),
                    dataset.graph.label(v),
                    &edges,
                )
                .expect("held-out node streams in cleanly");
            arrived[v as usize] = Some(id);
            new_ids.push(id);
        }
        g.validate();

        let seed = 100 + w as u64;
        let truth: Vec<usize> = wave
            .iter()
            .map(|&v| dataset.graph.label(v).unwrap() as usize)
            .collect();
        let baseline = micro_f1(
            &truth,
            &model.predict_ensemble(&dataset.graph, wave, seed, ROUNDS),
        );
        let streamed = micro_f1(&truth, &model.predict_ensemble(&g, &new_ids, seed, ROUNDS));
        assert!(
            streamed > MIN_F1,
            "wave {w}: streamed micro-F1 {streamed:.4} below floor {MIN_F1}"
        );
        assert!(
            (streamed - baseline).abs() <= MAX_F1_GAP,
            "wave {w}: streamed micro-F1 {streamed:.4} vs baseline {baseline:.4} \
             exceeds the {MAX_F1_GAP} bound"
        );
    }

    // Once every wave has landed, the streamed graph carries the full
    // graph's content — same node count, same half-edge count.
    assert_eq!(g.num_nodes(), dataset.graph.num_nodes());
    assert_eq!(g.num_directed_edges(), dataset.graph.num_directed_edges());

    // With every neighbour present the grown graph carries the full
    // graph's structure under new ids, so re-classifying the entire
    // held-out set on it must land within the same bound of the
    // frozen-split answer. (Node-for-node equality is not expected: the
    // per-node sampling seed mixes in the node id, which differs between
    // the two graphs.)
    let streamed_ids: Vec<NodeId> = held_out
        .iter()
        .map(|&v| arrived[v as usize].expect("landed"))
        .collect();
    let truth: Vec<usize> = held_out
        .iter()
        .map(|&v| dataset.graph.label(v).unwrap() as usize)
        .collect();
    let full_f1 = micro_f1(
        &truth,
        &model.predict_ensemble(&dataset.graph, held_out, 500, ROUNDS),
    );
    let grown_f1 = micro_f1(
        &truth,
        &model.predict_ensemble(&g, &streamed_ids, 500, ROUNDS),
    );
    assert!(
        (grown_f1 - full_f1).abs() <= MAX_F1_GAP,
        "fully-grown graph micro-F1 {grown_f1:.4} vs full-graph {full_f1:.4}"
    );
}
