//! Checkpoint parity: a trained model saved with `save_weights` and
//! restored into a freshly constructed model must be indistinguishable at
//! inference time — ensemble logits bit-identical, predictions equal —
//! and the fallible load path must reject mismatched layouts cleanly.

use widen::core::{Trainer, WidenConfig, WidenModel};
use widen::data::{acm_like, Scale};
use widen::serve::ModelRegistry;
use widen::tensor::CheckpointError;

fn tiny_config() -> WidenConfig {
    let mut c = WidenConfig::small();
    c.d = 16;
    c.n_w = 5;
    c.n_d = 5;
    c.phi = 2;
    c.epochs = 2;
    c.batch_size = 16;
    c
}

#[test]
fn restored_model_is_bit_identical_at_inference() {
    let dataset = acm_like(Scale::Smoke, 31);
    let train: Vec<u32> = dataset.transductive.train[..32].to_vec();
    let model = WidenModel::for_graph(&dataset.graph, tiny_config());
    let mut trainer = Trainer::new(model, &dataset.graph, &train);
    trainer.fit(&train);
    let trained = trainer.into_model();

    let checkpoint = trained.save_weights();
    let mut restored = WidenModel::for_graph(&dataset.graph, tiny_config());
    restored
        .try_load_weights(&checkpoint)
        .expect("trained checkpoint loads into a fresh model");

    let probe: Vec<u32> = dataset.transductive.test[..16].to_vec();
    let items: Vec<(u32, u64)> = probe.iter().map(|&v| (v, 17)).collect();

    // Bit-identical summed ensemble logits, not just close ones.
    let logits_a = trained.ensemble_logits(&dataset.graph, &items, 3);
    let logits_b = restored.ensemble_logits(&dataset.graph, &items, 3);
    assert_eq!(
        logits_a.max_abs_diff(&logits_b),
        0.0,
        "restored ensemble logits must match bit-for-bit"
    );

    // And therefore identical ensemble predictions and embeddings.
    let preds_a = trained.predict_ensemble(&dataset.graph, &probe, 17, 3);
    let preds_b = restored.predict_ensemble(&dataset.graph, &probe, 17, 3);
    assert_eq!(preds_a, preds_b);
    let emb_a = trained.embed_nodes(&dataset.graph, &probe, 17);
    let emb_b = restored.embed_nodes(&dataset.graph, &probe, 17);
    assert_eq!(emb_a.max_abs_diff(&emb_b), 0.0);
}

#[test]
fn registry_load_matches_direct_load() {
    let dataset = acm_like(Scale::Smoke, 32);
    let train: Vec<u32> = dataset.transductive.train[..16].to_vec();
    let model = WidenModel::for_graph(&dataset.graph, tiny_config());
    let mut trainer = Trainer::new(model, &dataset.graph, &train);
    trainer.fit(&train);
    let trained = trainer.into_model();
    let checkpoint = trained.save_weights();

    let registry =
        ModelRegistry::from_checkpoint(dataset.graph.clone(), tiny_config(), &checkpoint)
            .expect("checkpoint loads through the registry");
    let probe: Vec<u32> = dataset.transductive.test[..8].to_vec();
    let items: Vec<(u32, u64)> = probe.iter().map(|&v| (v, 5)).collect();
    let logits_a = trained.ensemble_logits(&dataset.graph, &items, 2);
    let st = registry.read();
    let logits_b = st.model().ensemble_logits(st.graph(), &items, 2);
    assert_eq!(logits_a.max_abs_diff(&logits_b), 0.0);
}

#[test]
fn layout_mismatches_are_errors_not_panics() {
    let dataset = acm_like(Scale::Smoke, 33);
    let model = WidenModel::for_graph(&dataset.graph, tiny_config());
    let checkpoint = model.save_weights();

    // Different latent dimension → shape mismatch on load.
    let mut wider = tiny_config();
    wider.d = 24;
    let mut other = WidenModel::for_graph(&dataset.graph, wider);
    match other.try_load_weights(&checkpoint) {
        Err(CheckpointError::ShapeMismatch { .. }) => {}
        other => panic!("expected ShapeMismatch, got {other:?}"),
    }

    // Corrupt bytes → error, and the target model keeps serving.
    let mut corrupt = checkpoint.to_vec();
    let mid = corrupt.len() / 2;
    corrupt[mid] ^= 0x40;
    let mut fresh = WidenModel::for_graph(&dataset.graph, tiny_config());
    assert!(fresh.try_load_weights(&corrupt).is_err());
    let preds = fresh.predict(&dataset.graph, &dataset.transductive.test[..4], 1);
    assert_eq!(preds.len(), 4);
}
