//! Differential tests pinning the batched execution engine to the per-node
//! oracle: identical logits (≤ 1e-5), identical parameter gradients under
//! the same loss (≤ 1e-4), identical predictions at inference time, and a
//! stable ParamId order for the positional chunk-gradient reduction.

use widen::core::model::MaskCache;
use widen::core::{Execution, NodeState, Trainer, WidenConfig, WidenModel};
use widen::data::{acm_like, Scale};
use widen::graph::HeteroGraph;
use widen::tensor::{Tape, Tensor};

fn tiny_config() -> WidenConfig {
    let mut c = WidenConfig::small();
    c.d = 16;
    c.n_w = 5;
    c.n_d = 5;
    c.phi = 2;
    c.epochs = 3;
    c.batch_size = 16;
    c
}

fn sample_states(model: &WidenModel, graph: &HeteroGraph, nodes: &[u32]) -> Vec<NodeState> {
    nodes
        .iter()
        .map(|&v| model.sample_state(graph, v, 5))
        .collect()
}

#[test]
fn batched_logits_and_gradients_match_per_node_oracle() {
    let dataset = acm_like(Scale::Smoke, 21);
    let nodes: Vec<u32> = dataset.graph.labeled_nodes()[..24].to_vec();
    let labels: Vec<usize> = nodes
        .iter()
        .map(|&v| dataset.graph.label(v).unwrap() as usize)
        .collect();
    let model = WidenModel::for_graph(&dataset.graph, tiny_config());
    let states = sample_states(&model, &dataset.graph, &nodes);
    let refs: Vec<&NodeState> = states.iter().collect();

    // Per-node oracle.
    let mut tape_a = Tape::new();
    let pv_a = model.insert_params(&mut tape_a);
    let masks = MaskCache::new();
    let logit_vars: Vec<_> = refs
        .iter()
        .map(|state| {
            model
                .forward_node(&mut tape_a, &pv_a, &dataset.graph, state, &masks)
                .logits
        })
        .collect();
    let stacked = tape_a.vstack(&logit_vars);
    let loss_a = tape_a.softmax_cross_entropy(stacked, &labels);
    tape_a.backward(loss_a);

    // Batched engine.
    let mut tape_b = Tape::new();
    let pv_b = model.insert_params(&mut tape_b);
    let fw = model.forward_batch(&mut tape_b, &pv_b, &dataset.graph, &refs);
    let loss_b = tape_b.softmax_cross_entropy(fw.logits, &labels);
    tape_b.backward(loss_b);

    let diff = tape_a.value(stacked).max_abs_diff(tape_b.value(fw.logits));
    assert!(diff <= 1e-5, "logits diverge by {diff}");
    let loss_gap = (tape_a.value(loss_a).get(0, 0) - tape_b.value(loss_b).get(0, 0)).abs();
    assert!(loss_gap <= 1e-5, "losses diverge by {loss_gap}");

    for ((id, var_a), (_, var_b)) in pv_a
        .pairs(model.ids())
        .into_iter()
        .zip(pv_b.pairs(model.ids()))
    {
        let name = model.params.name(id);
        let shape = model.params.get(id).shape();
        let zero = Tensor::zeros(shape.0, shape.1);
        let ga = tape_a.grad(var_a).unwrap_or(&zero);
        let gb = tape_b.grad(var_b).unwrap_or(&zero);
        let gap = ga.max_abs_diff(gb);
        assert!(gap <= 1e-4, "gradient for `{name}` diverges by {gap}");
    }
}

#[test]
fn engines_predict_identically_after_training() {
    let dataset = acm_like(Scale::Smoke, 22);
    let train: Vec<u32> = dataset.transductive.train[..32].to_vec();
    let model = WidenModel::for_graph(&dataset.graph, tiny_config());
    let mut trainer = Trainer::new(model, &dataset.graph, &train);
    trainer.fit(&train);
    let mut model = trainer.into_model();

    let probe: Vec<u32> = dataset.transductive.test[..24].to_vec();
    assert_eq!(model.config.execution, Execution::Batched);
    let preds_batched = model.predict(&dataset.graph, &probe, 9);
    let emb_batched = model.embed_nodes(&dataset.graph, &probe, 9);

    model.config.execution = Execution::PerNode;
    let preds_oracle = model.predict(&dataset.graph, &probe, 9);
    let emb_oracle = model.embed_nodes(&dataset.graph, &probe, 9);

    assert_eq!(preds_batched, preds_oracle);
    assert!(
        emb_batched.max_abs_diff(&emb_oracle) <= 1e-5,
        "inductive embeddings diverge by {}",
        emb_batched.max_abs_diff(&emb_oracle)
    );
}

#[test]
fn per_node_training_stays_available_behind_the_flag() {
    let dataset = acm_like(Scale::Smoke, 23);
    let train: Vec<u32> = dataset.transductive.train[..16].to_vec();
    let cfg = tiny_config().with_execution(Execution::PerNode);
    let model = WidenModel::for_graph(&dataset.graph, cfg);
    let mut trainer = Trainer::new(model, &dataset.graph, &train);
    let report = trainer.fit(&train);
    assert_eq!(report.epoch_losses.len(), 3);
    assert!(report.epoch_losses.iter().all(|l| l.is_finite()));
}

#[test]
fn chunk_gradient_param_order_is_stable_across_tapes() {
    // The trainer's chunk-gradient reduction zips gradient vectors from
    // different tapes positionally; this pins the contract that
    // `ParamVars::pairs` yields the same ParamId sequence on every tape.
    let dataset = acm_like(Scale::Smoke, 24);
    let model = WidenModel::for_graph(&dataset.graph, tiny_config());
    let mut tape_a = Tape::new();
    let mut tape_b = Tape::new();
    let pv_a = model.insert_params(&mut tape_a);
    let pv_b = model.insert_params(&mut tape_b);
    let ids_a: Vec<_> = pv_a
        .pairs(model.ids())
        .into_iter()
        .map(|(id, _)| id)
        .collect();
    let ids_b: Vec<_> = pv_b
        .pairs(model.ids())
        .into_iter()
        .map(|(id, _)| id)
        .collect();
    assert_eq!(ids_a, ids_b);
    assert_eq!(ids_a.len(), 14, "every trainable parameter participates");
}
