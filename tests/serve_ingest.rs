//! Integration: the streaming-serve loop. A client ships a node the model
//! has never seen — features, label, typed edges — over the wire and gets
//! its embedding back in one round trip, bit-identical to an offline
//! forward pass on a locally mutated graph. Checkpoint hot-swap flips the
//! serving generation in place and flushes the embedding cache, so a row
//! computed under the old digest is never served again.

use widen::core::{WidenConfig, WidenModel};
use widen::data::{acm_like, Scale};
use widen::graph::{EdgeTypeId, NodeTypeId};
use widen::serve::{Client, ClientError, ModelRegistry, ServeConfig, Server};

fn tiny_config() -> WidenConfig {
    let mut c = WidenConfig::small();
    c.d = 8;
    c.n_w = 4;
    c.n_d = 4;
    c.phi = 1;
    c
}

fn bits(row: &[f32]) -> Vec<u32> {
    row.iter().map(|v| v.to_bits()).collect()
}

#[test]
fn wire_ingest_matches_offline_forward_bit_for_bit() {
    let dataset = acm_like(Scale::Smoke, 70);
    let model = WidenModel::for_graph(&dataset.graph, tiny_config());
    let checkpoint = model.save_weights();
    let registry =
        ModelRegistry::from_checkpoint(dataset.graph.clone(), tiny_config(), &checkpoint)
            .expect("checkpoint loads");

    // Offline oracle: the same two-node arrival applied to a local clone
    // of the graph, embedded with the same frozen weights and seeds. The
    // second arrival attaches to the first — a node that itself did not
    // exist when the server started — which changes the first node's
    // neighbourhood, so its embedding is captured both at ingest time and
    // after the graph grew further.
    let feat_dim = dataset.graph.feature_dim();
    let first_edges = [(0u32, 0u16), (1, 0)];
    let mut oracle_graph = dataset.graph.clone();
    let first_typed: Vec<(u32, EdgeTypeId)> = first_edges
        .iter()
        .map(|&(p, t)| (p, EdgeTypeId(t)))
        .collect();
    let first_id = oracle_graph
        .add_node_with_edges(NodeTypeId(0), vec![0.25; feat_dim], Some(1), &first_typed)
        .expect("valid node");
    let want_first_at_ingest = model.embed_requests(&oracle_graph, &[(first_id, 41)]);
    let second_edges = [(first_id, 0u16), (2, 0)];
    let second_typed: Vec<(u32, EdgeTypeId)> = second_edges
        .iter()
        .map(|&(p, t)| (p, EdgeTypeId(t)))
        .collect();
    let second_id = oracle_graph
        .add_node_with_edges(NodeTypeId(1), vec![-0.5; feat_dim], None, &second_typed)
        .expect("valid node");
    let want_first_final = model.embed_requests(&oracle_graph, &[(first_id, 41)]);
    let want_second = model.embed_requests(&oracle_graph, &[(second_id, 42)]);

    let handle = Server::bind(registry, ServeConfig::default(), "127.0.0.1:0").unwrap();
    let mut client = Client::connect(handle.local_addr()).expect("connect");

    // Embedding a node that does not exist yet is a BadRequest…
    match client.embed(&[first_id], 41) {
        Err(ClientError::Server(_)) => {}
        other => panic!("embedding an absent node must fail, got {other:?}"),
    }

    // …until it arrives over the wire: one round trip returns both the
    // assigned id and the embedding.
    let (got_first, row_first) = client
        .ingest(0, &vec![0.25; feat_dim], Some(1), &first_edges, 41)
        .expect("ingest succeeds");
    assert_eq!(got_first, first_id);
    assert_eq!(bits(&row_first), bits(want_first_at_ingest.row(0)));

    let (got_second, row_second) = client
        .ingest(1, &vec![-0.5; feat_dim], None, &second_edges, 42)
        .expect("chained ingest succeeds");
    assert_eq!(got_second, second_id);
    assert_eq!(bits(&row_second), bits(want_second.row(0)));

    // The second ingest bumped the graph version, so the first node's
    // cached at-ingest row is unreachable: a follow-up Embed recomputes
    // on the *current* graph and must match the post-growth oracle.
    let rows = client.embed(&[first_id], 41).expect("embed now succeeds");
    assert_eq!(bits(&rows[0]), bits(want_first_final.row(0)));

    // The second node's neighbourhood is untouched since its ingest, so
    // its warmed cache row is served as-is and stays bit-identical.
    let rows = client.embed(&[second_id], 42).expect("embed succeeds");
    assert_eq!(bits(&rows[0]), bits(want_second.row(0)));

    // Bad ingests are typed errors and do not grow the graph.
    match client.ingest(0, &vec![0.0; feat_dim], None, &[(u32::MAX, 0)], 1) {
        Err(ClientError::Server(_)) => {}
        other => panic!("out-of-range peer must fail, got {other:?}"),
    }
    match client.ingest(0, &[0.0], None, &[], 1) {
        Err(ClientError::Server(_)) => {}
        other => panic!("feature-dim mismatch must fail, got {other:?}"),
    }
    match client.embed(&[second_id + 1], 1) {
        Err(ClientError::Server(_)) => {}
        other => panic!("failed ingests must not assign ids, got {other:?}"),
    }

    let stats = handle.shutdown();
    assert_eq!(stats.ingests, 2, "only successful ingests are counted");
    assert!(
        stats.cache_hits >= 1,
        "ingest must warm the embedding cache"
    );
}

#[test]
fn ingest_recomputes_cached_rows_beyond_the_direct_peers() {
    // The deep-walk receptive field: attaching edges to peer `p` changes
    // the sampling stream of any node whose walks can traverse `p` — not
    // just `p` itself. A row cached for such a second-hop node before the
    // ingest must never be served afterwards (this is exactly what
    // graph-version cache keys guarantee; per-peer invalidation would
    // miss it).
    let dataset = acm_like(Scale::Smoke, 72);
    let model = WidenModel::for_graph(&dataset.graph, tiny_config());
    let checkpoint = model.save_weights();
    let registry =
        ModelRegistry::from_checkpoint(dataset.graph.clone(), tiny_config(), &checkpoint)
            .expect("checkpoint loads");

    let feat_dim = dataset.graph.feature_dim();
    let peer = 0u32;
    let mut mutated = dataset.graph.clone();
    mutated
        .add_node_with_edges(
            NodeTypeId(0),
            vec![0.5; feat_dim],
            None,
            &[(peer, EdgeTypeId(0))],
        )
        .expect("valid node");

    // Pick a neighbour of the peer (two hops from the new node, so never
    // an edge endpoint of the ingest) and a seed where the mutation
    // really changes its embedding — skipping vacuous combinations.
    let mut target = None;
    'search: for &t in dataset.graph.neighbors(peer) {
        if t == peer {
            continue;
        }
        for seed in 0..32u64 {
            let before = model.embed_requests(&dataset.graph, &[(t, seed)]);
            let after = model.embed_requests(&mutated, &[(t, seed)]);
            if before.row(0) != after.row(0) {
                target = Some((t, seed, after.row(0).to_vec()));
                break 'search;
            }
        }
    }
    let (t, seed, want) = target.expect("some second-hop node must feel the mutation");

    let handle = Server::bind(registry, ServeConfig::default(), "127.0.0.1:0").unwrap();
    let mut client = Client::connect(handle.local_addr()).expect("connect");

    // Cache the pre-mutation row…
    let pre = client.embed(&[t], seed).expect("embed succeeds");
    // …mutate the graph through a node attached only to `peer`…
    client
        .ingest(0, &vec![0.5; feat_dim], None, &[(peer, 0)], 7)
        .expect("ingest succeeds");
    // …and the follow-up embed must recompute on the mutated graph, never
    // serve the cached pre-mutation row.
    let post = client.embed(&[t], seed).expect("embed succeeds");
    assert_ne!(
        bits(&pre[0]),
        bits(&post[0]),
        "stale pre-mutation row was served for a non-peer node"
    );
    assert_eq!(bits(&post[0]), bits(&want));

    handle.shutdown();
}

#[test]
fn hot_swap_invalidates_cache_and_serves_the_new_generation() {
    let dataset = acm_like(Scale::Smoke, 71);
    let model_a = WidenModel::for_graph(&dataset.graph, tiny_config());
    let ckpt_a = model_a.save_weights();
    let mut cfg_b = tiny_config();
    cfg_b.seed = 4242; // different init → genuinely different weights
    let model_b = WidenModel::for_graph(&dataset.graph, cfg_b);
    let ckpt_b = model_b.save_weights();

    let registry = ModelRegistry::from_checkpoint(dataset.graph.clone(), tiny_config(), &ckpt_a)
        .expect("checkpoint loads");
    let handle = Server::bind(registry, ServeConfig::default(), "127.0.0.1:0").unwrap();
    let mut client = Client::connect(handle.local_addr()).expect("connect");

    let nodes: Vec<u32> = (0..4).collect();
    let seed = 9;
    let before = client.embed(&nodes, seed).expect("embed succeeds");
    // Repeat to populate + hit the cache under generation A.
    let again = client.embed(&nodes, seed).expect("cached embed succeeds");
    for (a, b) in before.iter().zip(&again) {
        assert_eq!(bits(a), bits(b));
    }
    let hits_before_swap = handle.stats().cache_hits;
    assert!(hits_before_swap >= nodes.len() as u64);

    // A corrupt checkpoint is rejected and generation A keeps serving.
    let mut bad = ckpt_b.to_vec();
    bad[12] ^= 0xFF;
    assert!(handle.hot_swap(&bad).is_err());
    let still = client.embed(&nodes, seed).expect("embed succeeds");
    for (a, b) in before.iter().zip(&still) {
        assert_eq!(bits(a), bits(b), "failed swap must not change serving");
    }

    // The real swap: new digest, flushed cache, and the very same
    // (nodes, seed) request now answers with generation B's rows — never
    // the stale cached generation-A rows.
    let digest = handle.hot_swap(&ckpt_b).expect("valid checkpoint");
    assert_eq!(digest, widen::tensor::digest64(&ckpt_b));
    let after = client.embed(&nodes, seed).expect("embed succeeds");
    let want: Vec<Vec<f32>> = {
        let emb = model_b.embed_nodes(&dataset.graph, &nodes, seed);
        (0..nodes.len()).map(|i| emb.row(i).to_vec()).collect()
    };
    for ((got, want), old) in after.iter().zip(&want).zip(&before) {
        assert_eq!(bits(got), bits(want), "post-swap rows must be generation B");
        assert_ne!(bits(got), bits(old), "stale generation-A row was served");
    }

    // Ingest after the swap embeds under generation B as well.
    let feat_dim = dataset.graph.feature_dim();
    let (node, row) = client
        .ingest(0, &vec![0.125; feat_dim], None, &[(0, 0), (1, 0)], 77)
        .expect("ingest succeeds");
    let mut mutated = dataset.graph.clone();
    let oracle_id = mutated
        .add_node_with_edges(
            NodeTypeId(0),
            vec![0.125; feat_dim],
            None,
            &[(0, EdgeTypeId(0)), (1, EdgeTypeId(0))],
        )
        .expect("valid node");
    assert_eq!(node, oracle_id);
    let want_row = model_b.embed_requests(&mutated, &[(node, 77)]);
    assert_eq!(bits(&row), bits(want_row.row(0)));

    handle.shutdown();
}
